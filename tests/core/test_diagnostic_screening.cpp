// Diagnostic screening options and report enrichment: limit details
// (index, phase, signed margin), the continue-after-self-test and
// distortion acquisitions, scalar-vs-batched bit-identity of the new
// paths, the per-die report hook, and the CSV shard round trip.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/csv.hpp"
#include "core/screening.hpp"
#include "core/sweep_engine.hpp"
#include "dut/filters.hpp"
#include "gen/generator.hpp"

namespace {

using namespace bistna;
using namespace bistna::core;

analyzer_settings fast_settings() {
    analyzer_settings settings;
    settings.periods = 48;
    settings.distortion_periods = 96;
    settings.settle_periods = 16;
    settings.evaluator.calibration_periods = 256;
    return settings;
}

board_factory paper_factory(double sigma = 0.02) {
    return [sigma](std::uint64_t seed) {
        demonstrator_board board(gen::generator_params::ideal(),
                                 dut::make_paper_dut(sigma, seed));
        board.set_amplitude(millivolt(150.0));
        return board;
    };
}

/// A factory whose stimulus misses the self-test window (amplitude
/// programmed off-nominal), so every die fails the self-test.
board_factory detuned_factory() {
    return [](std::uint64_t seed) {
        demonstrator_board board(gen::generator_params::ideal(),
                                 dut::make_paper_dut(0.02, seed));
        board.set_amplitude(millivolt(120.0));
        return board;
    };
}

screening_options diagnostic_options() {
    screening_options options;
    options.continue_after_self_test_failure = true;
    options.measure_distortion = true;
    options.distortion_max_harmonic = 3;
    return options;
}

TEST(DiagnosticScreening, ReportCarriesLimitDetailsAndDiagnostics) {
    auto board = paper_factory()(3);
    network_analyzer analyzer(board, fast_settings());
    const auto mask = spec_mask::paper_lowpass();
    const auto report = screen(analyzer, mask, diagnostic_options());

    ASSERT_TRUE(report.self_test_passed);
    ASSERT_EQ(report.limits.size(), mask.limits.size());
    for (std::size_t i = 0; i < report.limits.size(); ++i) {
        const auto& result = report.limits[i];
        EXPECT_EQ(result.limit_index, i);
        // Signed margin: the worst-case distance of the guaranteed gain
        // interval to the window, positive iff the limit passed.
        const double expected_margin =
            std::min(result.measured_bounds_db.lo() - result.limit.gain_db_min,
                     result.limit.gain_db_max - result.measured_bounds_db.hi());
        EXPECT_DOUBLE_EQ(result.margin_db, expected_margin);
        EXPECT_EQ(result.passed, result.margin_db >= 0.0);
        // The phase of a low-pass at/above cutoff is distinctly negative.
        EXPECT_LT(result.phase_deg, 0.0);
    }
    EXPECT_NE(report.stimulus_phase_deg, 0.0);
    EXPECT_TRUE(report.distortion_measured);
    EXPECT_DOUBLE_EQ(report.thd_f_hz, mask.limits.front().f_hz);
    EXPECT_LT(report.thd_db, -20.0);
}

TEST(DiagnosticScreening, ContinueAfterSelfTestFailureKeepsMeasuring) {
    const auto mask = spec_mask::paper_lowpass();
    auto detuned = detuned_factory();

    // Default flow: early return, no limit data.
    auto board_a = detuned(3);
    network_analyzer analyzer_a(board_a, fast_settings());
    const auto plain = screen(analyzer_a, mask);
    EXPECT_FALSE(plain.self_test_passed);
    EXPECT_TRUE(plain.limits.empty());

    // Diagnostic flow: still failing, but fully measured.
    auto board_b = detuned(3);
    network_analyzer analyzer_b(board_b, fast_settings());
    const auto diagnostic = screen(analyzer_b, mask, diagnostic_options());
    EXPECT_FALSE(diagnostic.self_test_passed);
    EXPECT_FALSE(diagnostic.passed);
    EXPECT_EQ(diagnostic.limits.size(), mask.limits.size());
    EXPECT_TRUE(diagnostic.distortion_measured);
}

void expect_reports_identical(const std::vector<screening_report>& a,
                              const std::vector<screening_report>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t die = 0; die < a.size(); ++die) {
        EXPECT_EQ(a[die].passed, b[die].passed);
        EXPECT_EQ(a[die].self_test_passed, b[die].self_test_passed);
        EXPECT_EQ(a[die].stimulus_volts, b[die].stimulus_volts);
        EXPECT_EQ(a[die].stimulus_phase_deg, b[die].stimulus_phase_deg);
        EXPECT_EQ(a[die].offset_rate, b[die].offset_rate);
        EXPECT_EQ(a[die].distortion_measured, b[die].distortion_measured);
        // Bit-pattern compare: an unmeasured thd_db is the NaN sentinel,
        // which EXPECT_EQ on doubles would always flag as different.
        EXPECT_EQ(std::bit_cast<std::uint64_t>(a[die].thd_db),
                  std::bit_cast<std::uint64_t>(b[die].thd_db));
        ASSERT_EQ(a[die].limits.size(), b[die].limits.size());
        for (std::size_t i = 0; i < a[die].limits.size(); ++i) {
            EXPECT_EQ(a[die].limits[i].measured_db, b[die].limits[i].measured_db);
            EXPECT_EQ(a[die].limits[i].phase_deg, b[die].limits[i].phase_deg);
            EXPECT_EQ(a[die].limits[i].margin_db, b[die].limits[i].margin_db);
            EXPECT_EQ(a[die].limits[i].limit_index, b[die].limits[i].limit_index);
        }
    }
}

TEST(DiagnosticScreening, BatchedDiagnosticPathIsBitIdenticalToScalar) {
    const auto mask = spec_mask::paper_lowpass();
    const auto settings = fast_settings();
    const auto options = diagnostic_options();
    constexpr std::size_t dice = 6;

    // A lot where some dice fail the self-test outright (detuned stimulus)
    // would fail every die; instead mix: healthy factory with diagnostics
    // exercises the distortion stage, detuned one the continue path.
    for (const auto& factory : {paper_factory(), detuned_factory()}) {
        sweep_engine_options scalar_options;
        scalar_options.threads = 2;
        scalar_options.batch_lanes = 1;
        sweep_engine scalar(factory, settings, scalar_options);
        const auto reference = scalar.screen_batch(mask, dice, 1, options);

        for (std::size_t lanes : {std::size_t{3}, std::size_t{4}}) {
            sweep_engine_options banked_options;
            banked_options.threads = 2;
            banked_options.batch_lanes = lanes;
            sweep_engine banked(factory, settings, banked_options);
            expect_reports_identical(banked.screen_batch(mask, dice, 1, options),
                                     reference);
        }
    }
}

TEST(DiagnosticScreening, ReportHookSeesEveryDieInOrder) {
    const auto mask = spec_mask::paper_lowpass();
    std::vector<std::size_t> seen;
    std::size_t failing = 0;
    const auto lot = screen_lot_parallel(
        paper_factory(0.08), fast_settings(), mask, 8, /*first_seed=*/1,
        /*threads=*/2, /*batch_lanes=*/2, {},
        [&](std::size_t die, const screening_report& report) {
            seen.push_back(die);
            failing += report.passed ? 0 : 1;
        });
    ASSERT_EQ(seen.size(), 8u);
    for (std::size_t die = 0; die < seen.size(); ++die) {
        EXPECT_EQ(seen[die], die);
    }
    EXPECT_EQ(failing, lot.dice - lot.passed);
}

TEST(DiagnosticScreening, ReportsRoundTripThroughCsv) {
    const auto mask = spec_mask::paper_lowpass();
    sweep_engine engine(paper_factory(0.08), fast_settings(), {.threads = 2});
    const auto reports = engine.screen_batch(mask, 5, 1, diagnostic_options());

    // A shard that screened dice [41, 46): the die column carries the
    // global identities, so a collector can merge shards.
    const std::string path = "/tmp/bistna_screening_reports_roundtrip.csv";
    csv_write(screening_reports_to_csv(reports, /*first_die=*/41), path);
    std::vector<std::uint64_t> die_ids;
    const auto reloaded = screening_reports_from_csv(csv_read(path), &mask, &die_ids);
    std::remove(path.c_str());
    ASSERT_EQ(die_ids.size(), reports.size());
    for (std::size_t i = 0; i < die_ids.size(); ++i) {
        EXPECT_EQ(die_ids[i], 41u + i);
    }

    expect_reports_identical(reloaded, reports);
    // Interval bounds and limit windows survive too (spot check), and the
    // mask restored the limit names the CSV cannot carry.
    ASSERT_FALSE(reloaded.empty());
    ASSERT_FALSE(reloaded.front().limits.empty());
    EXPECT_EQ(reloaded.front().limits[0].measured_bounds_db,
              reports.front().limits[0].measured_bounds_db);
    EXPECT_EQ(reloaded.front().limits[0].limit.gain_db_min, mask.limits[0].gain_db_min);
    EXPECT_EQ(reloaded.front().limits[0].limit.name, mask.limits[0].name);

    // Aggregation over reloaded reports matches the original lot.
    const auto lot_a = aggregate_lot(reports);
    const auto lot_b = aggregate_lot(reloaded);
    EXPECT_EQ(lot_a.passed, lot_b.passed);
    EXPECT_EQ(lot_a.dice, lot_b.dice);
}

TEST(DiagnosticScreening, UnmeasuredThdSurvivesTheCsvRoundTrip) {
    const auto mask = spec_mask::paper_lowpass();
    sweep_engine engine(paper_factory(), fast_settings(), {.threads = 1});
    // Plain production options: the distortion stage never runs, so every
    // report carries the NaN sentinel, not a fake 0 dB reading.
    const auto reports = engine.screen_batch(mask, 2, 1);
    ASSERT_FALSE(reports.empty());
    for (const auto& report : reports) {
        EXPECT_FALSE(report.distortion_measured);
        EXPECT_TRUE(std::isnan(report.thd_db));
    }

    const std::string path = "/tmp/bistna_screening_unmeasured_thd.csv";
    csv_write(screening_reports_to_csv(reports), path);
    const auto reloaded = screening_reports_from_csv(csv_read(path), &mask);
    std::remove(path.c_str());
    ASSERT_EQ(reloaded.size(), reports.size());
    for (std::size_t i = 0; i < reloaded.size(); ++i) {
        EXPECT_FALSE(reloaded[i].distortion_measured);
        // The "nan" cell comes back as the canonical quiet NaN,
        // bit-identical to the sentinel it left as.
        EXPECT_EQ(std::bit_cast<std::uint64_t>(reloaded[i].thd_db),
                  std::bit_cast<std::uint64_t>(reports[i].thd_db));
    }
}

TEST(DiagnosticScreening, ReportCsvRejectsCorruptLimitCounts) {
    const auto mask = spec_mask::paper_lowpass();
    sweep_engine engine(paper_factory(), fast_settings(), {.threads = 1});
    const auto doc = screening_reports_to_csv(engine.screen_batch(mask, 1, 1));

    // Shards arrive from other machines: a negative, fractional, or
    // too-large limit count must fail cleanly instead of reading out of
    // bounds.
    for (double corrupt : {-1.0, 2.5, 1.0e18}) {
        auto bad = doc;
        bad.rows[0][9] = corrupt;
        EXPECT_THROW(screening_reports_from_csv(bad), precondition_error) << corrupt;
    }
}

// A lot where every die fails the self-test: the non-diagnostic batch
// must drop all lanes after stage 1 (no limits anywhere), matching the
// scalar early return.
TEST(DiagnosticScreening, NonDiagnosticBatchStillDropsFailedLanes) {
    const auto mask = spec_mask::paper_lowpass();
    sweep_engine_options options;
    options.threads = 1;
    options.batch_lanes = 4;
    sweep_engine engine(detuned_factory(), fast_settings(), options);
    const auto reports = engine.screen_batch(mask, 4, 1);
    for (const auto& report : reports) {
        EXPECT_FALSE(report.self_test_passed);
        EXPECT_TRUE(report.limits.empty());
        EXPECT_FALSE(report.distortion_measured);
    }
}

} // namespace
