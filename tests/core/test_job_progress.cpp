// job_progress regression suite: completed_items() must be monotonic and
// must move MID-GROUP when the group function ticks, not only when whole
// groups publish.  The pre-progress behavior (completed_count only) made a
// 1-group job report 0 until the instant it reported everything.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/job_queue.hpp"

namespace {

using namespace bistna;

TEST(JobQueueProgress, TicksAreObservableMidGroup) {
    core::job_queue queue(1);
    constexpr std::size_t kItems = 4;

    std::atomic<bool> release{false};
    // One group holds the whole job, so without mid-group ticks the old
    // completed_items() would stay 0 until the group publishes.
    auto handle = queue.submit<int>(
        kItems, kItems,
        [&](std::size_t first, std::size_t count, int* out,
            const core::job_progress& progress) {
            for (std::size_t i = 0; i < count; ++i) {
                out[i] = static_cast<int>(first + i);
                progress.items_done();
                if (i + 1 == count / 2) {
                    // Half done: hold the group open until the test has
                    // observed the mid-group value.
                    while (!release.load(std::memory_order_acquire)) {
                        std::this_thread::yield();
                    }
                }
            }
        });

    // The worker parks half way with 2 of 4 items ticked.
    while (handle.completed_items() < kItems / 2) {
        std::this_thread::yield();
    }
    EXPECT_EQ(handle.completed_items(), kItems / 2);
    EXPECT_FALSE(handle.finished());

    release.store(true, std::memory_order_release);
    const auto results = handle.results();
    ASSERT_EQ(results.size(), kItems);
    for (std::size_t i = 0; i < kItems; ++i) {
        EXPECT_EQ(results[i], static_cast<int>(i));
    }
    EXPECT_EQ(handle.completed_items(), kItems);
}

TEST(JobQueueProgress, CompletedItemsIsMonotonicUnderSampling) {
    core::job_queue queue(2);
    constexpr std::size_t kItems = 256;
    auto handle = queue.submit<std::uint64_t>(
        kItems, 8,
        [](std::size_t first, std::size_t count, std::uint64_t* out,
           const core::job_progress& progress) {
            for (std::size_t i = 0; i < count; ++i) {
                out[i] = first + i;
                progress.items_done();
            }
        });

    std::size_t last = 0;
    while (!handle.finished()) {
        const std::size_t now = handle.completed_items();
        EXPECT_GE(now, last);
        last = now;
    }
    (void)handle.results();
    EXPECT_EQ(handle.completed_items(), kItems);
}

TEST(JobQueueProgress, ExactCountForTickingGroups) {
    // Ticks must sum to exactly the item count: never ahead of the truth
    // at the end, even with many short final groups.
    core::job_queue queue(4);
    for (std::size_t items : {1ul, 7ul, 64ul, 100ul}) {
        auto handle = queue.submit<int>(
            items, 6,
            [](std::size_t, std::size_t count, int* out,
               const core::job_progress& progress) {
                for (std::size_t i = 0; i < count; ++i) {
                    out[i] = 1;
                }
                progress.items_done(count);
            });
        (void)handle.results();
        EXPECT_EQ(handle.completed_items(), items);
    }
}

TEST(JobQueueProgress, ThreeArgGroupFunctionsStillReportWholeGroups) {
    // The legacy shape (no job_progress parameter) keeps working: progress
    // falls back to published groups and still lands exactly.
    core::job_queue queue(2);
    constexpr std::size_t kItems = 24;
    auto handle = queue.submit<int>(
        kItems, 4, [](std::size_t first, std::size_t count, int* out) {
            for (std::size_t i = 0; i < count; ++i) {
                out[i] = static_cast<int>(first + i);
            }
        });
    (void)handle.results();
    EXPECT_EQ(handle.completed_items(), kItems);
}

TEST(JobQueueProgress, EngineScreeningTicksPerDieNotPerGroup) {
    // End-to-end through the sweep engine is covered by the engine suite;
    // here we only pin the plumbing contract the examples rely on: a
    // default-constructed job_progress is inert and safe to call.
    const core::job_progress inert;
    inert.items_done();
    inert.items_done(10);
    SUCCEED();
}

} // namespace
