// The asynchronous job queue: streaming consumption, progress counters,
// completion callbacks, worker-exception capture, cooperative cancellation
// and pool sharing across concurrent jobs -- plus the contract everything
// rests on, that streamed items are bit-identical to the synchronous
// paths' slots at every {threads, batch_lanes} combination.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/job_queue.hpp"
#include "core/screening.hpp"
#include "core/sweep.hpp"
#include "core/sweep_engine.hpp"
#include "dut/filters.hpp"

namespace {

using namespace bistna;
using core::analyzer_settings;
using core::board_factory;
using core::job_handle;
using core::job_queue;
using core::job_state;
using core::spec_mask;
using core::sweep_engine;
using core::sweep_engine_options;

// --- Plain queue mechanics (synthetic integer jobs) ------------------------

int item_value(std::size_t index) { return static_cast<int>(index * index + 7); }

/// A synthetic job: item i evaluates to item_value(i), `group` items per
/// task.
job_handle<int> submit_squares(job_queue& queue, std::size_t items, std::size_t group,
                               job_handle<int>::item_callback on_item = nullptr) {
    return queue.submit<int>(
        items, group,
        [](std::size_t first, std::size_t count, int* out) {
            for (std::size_t l = 0; l < count; ++l) {
                out[l] = item_value(first + l);
            }
        },
        std::move(on_item));
}

TEST(JobQueue, StreamsEveryItemExactlyOnce) {
    job_queue queue(3);
    auto handle = submit_squares(queue, 17, 4);
    EXPECT_EQ(handle.total_items(), 17u);

    std::set<std::size_t> seen;
    while (auto item = handle.next_completed()) {
        EXPECT_TRUE(seen.insert(item->index).second) << "index delivered twice";
        EXPECT_EQ(item->value, item_value(item->index));
    }
    EXPECT_EQ(seen.size(), 17u);
    EXPECT_EQ(handle.state(), job_state::succeeded);
    EXPECT_EQ(handle.completed_items(), 17u);
    EXPECT_EQ(handle.error(), nullptr);
}

TEST(JobQueue, ResultsComeBackInItemOrder) {
    job_queue queue(4);
    const auto results = submit_squares(queue, 33, 5).results();
    ASSERT_EQ(results.size(), 33u);
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i], item_value(i));
    }
}

TEST(JobQueue, CallbackSeesEveryItemBeforeItIsPulled) {
    job_queue queue(2);
    std::mutex mutex;
    std::set<std::size_t> called;
    auto handle = submit_squares(queue, 12, 3, [&](std::size_t index, const int& value) {
        EXPECT_EQ(value, item_value(index));
        std::lock_guard<std::mutex> lock(mutex);
        called.insert(index);
    });
    while (auto item = handle.next_completed()) {
        // The callback contract: it has run before the item reaches the
        // pull stream.
        std::lock_guard<std::mutex> lock(mutex);
        EXPECT_TRUE(called.count(item->index)) << "item streamed before its callback";
    }
    EXPECT_EQ(called.size(), 12u);
}

TEST(JobQueue, PublishedCallbackNeverRacesAheadOfVisibility) {
    job_queue queue(2);
    std::atomic<bool> gate{false};
    // Gate every group so nothing publishes before the callback is
    // registered (set_published_callback only covers later publications).
    auto handle = queue.submit<int>(
        10, 3,
        [&](std::size_t first, std::size_t count, int* out) {
            while (!gate.load(std::memory_order_acquire)) {
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
            }
            for (std::size_t l = 0; l < count; ++l) {
                out[l] = item_value(first + l);
            }
        });

    std::atomic<std::size_t> wakes{0};
    std::atomic<std::size_t> max_visible{0};
    std::atomic<bool> terminal_seen{false};
    handle.set_published_callback([&] {
        // Post-publish contract: whatever this wake advertises is already
        // observable -- including the terminal flip of the last group.
        const std::size_t visible = handle.completed_items();
        std::size_t prev = max_visible.load();
        while (prev < visible && !max_visible.compare_exchange_weak(prev, visible)) {
        }
        if (handle.finished()) {
            terminal_seen.store(true, std::memory_order_release);
        }
        wakes.fetch_add(1, std::memory_order_relaxed);
    });

    gate.store(true, std::memory_order_release);
    handle.wait();
    // The wake for the final publication fires after wait() can already
    // return; give it a beat, then it MUST have observed the terminal
    // state -- this is exactly the lost-wakeup an event loop dies on.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while ((!terminal_seen.load(std::memory_order_acquire) || max_visible.load() < 10) &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(terminal_seen.load());
    EXPECT_EQ(max_visible.load(), 10u);
    EXPECT_GE(wakes.load(), 1u);

    // An event-driven consumer woken by the last callback drains the
    // whole job without ever blocking.
    for (std::size_t i = 0; i < 10; ++i) {
        auto item = handle.try_next_in_order();
        ASSERT_TRUE(item.has_value()) << "item " << i << " not visible after the wake";
        EXPECT_EQ(item->value, item_value(i));
    }
}

TEST(JobQueue, ConcurrentJobsShareOnePool) {
    job_queue queue(4);
    auto a = submit_squares(queue, 20, 2);
    auto b = submit_squares(queue, 20, 2);
    EXPECT_EQ(queue.jobs_submitted(), 2u);
    const auto results_a = a.results();
    const auto results_b = b.results();
    EXPECT_EQ(results_a, results_b);
    EXPECT_EQ(queue.jobs_pending(), 0u);
}

TEST(JobQueue, EmptyJobIsRejected) {
    job_queue queue(1);
    EXPECT_THROW(submit_squares(queue, 0, 1), precondition_error);
}

TEST(JobQueue, WorkerExceptionFailsTheJobAndIsRethrown) {
    job_queue queue(2);
    auto handle = queue.submit<int>(8, 1, [](std::size_t first, std::size_t, int* out) {
        if (first == 3) {
            throw configuration_error("item 3 exploded");
        }
        out[0] = item_value(first);
    });
    // The stream ends early (remaining work is drained), delivering only
    // items that genuinely completed.
    while (auto item = handle.next_completed()) {
        EXPECT_EQ(item->value, item_value(item->index));
        EXPECT_NE(item->index, 3u);
    }
    EXPECT_EQ(handle.state(), job_state::failed);
    EXPECT_NE(handle.error(), nullptr);
    EXPECT_THROW(handle.results(), configuration_error);
    // The completed subset stays readable without throwing.
    for (const auto& item : handle.completed()) {
        EXPECT_EQ(item.value, item_value(item.index));
    }
    // The pool survives a failed job: the next submission runs normally.
    EXPECT_EQ(submit_squares(queue, 5, 1).results().size(), 5u);
}

TEST(JobQueue, ThrowingCallbackFailsTheJobButKeepsMeasuredResults) {
    job_queue queue(2);
    auto handle = submit_squares(queue, 10, 1, [](std::size_t index, const int&) {
        if (index == 2) {
            throw configuration_error("observer exploded");
        }
    });
    handle.wait();
    EXPECT_EQ(handle.state(), job_state::failed);
    EXPECT_THROW(handle.results(), configuration_error);
    // The item whose callback threw was still measured and published --
    // a throwing observer never discards results.
    bool item2_published = false;
    for (const auto& item : handle.completed()) {
        EXPECT_EQ(item.value, item_value(item.index));
        item2_published = item2_published || item.index == 2;
    }
    EXPECT_TRUE(item2_published);
}

TEST(JobQueue, CancelSkipsUnstartedWorkAndKeepsCompletedItems) {
    job_queue queue(2);
    // Two gate-blocked items occupy both workers; everything behind them
    // is unclaimed until the gate opens, so cancelling now deterministically
    // skips items 2..15 and completes exactly items 0 and 1.
    std::promise<void> gate;
    std::shared_future<void> open(gate.get_future());
    std::atomic<int> started{0};
    auto handle = queue.submit<int>(16, 1, [&, open](std::size_t first, std::size_t, int* out) {
        if (first < 2) {
            started.fetch_add(1);
            open.wait();
        }
        out[0] = item_value(first);
    });
    while (started.load() < 2) {
        std::this_thread::yield();
    }
    handle.cancel();
    gate.set_value();
    handle.wait();

    EXPECT_EQ(handle.state(), job_state::cancelled);
    const auto completed = handle.completed();
    ASSERT_EQ(completed.size(), 2u);
    EXPECT_EQ(completed[0].index, 0u);
    EXPECT_EQ(completed[1].index, 1u);
    for (const auto& item : completed) {
        EXPECT_EQ(item.value, item_value(item.index));
    }
    EXPECT_THROW(handle.results(), configuration_error);
    // The stream delivers the two completed items, then ends.
    std::size_t streamed = 0;
    while (handle.next_completed()) {
        ++streamed;
    }
    EXPECT_EQ(streamed, 2u);
}

TEST(JobQueue, DestructionFinishesOutstandingHandles) {
    // Dropping the queue mid-job must cancel pending work, join every
    // worker and leave the handle in a terminal state -- never a leaked
    // thread or a handle that blocks forever.
    job_handle<int> handle;
    std::promise<void> gate;
    std::shared_future<void> open(gate.get_future());
    std::atomic<int> started{0};
    {
        job_queue queue(1);
        handle = queue.submit<int>(32, 1,
                                   [&, open](std::size_t first, std::size_t, int* out) {
                                       if (first == 0) {
                                           started.fetch_add(1);
                                           open.wait();
                                       }
                                       out[0] = item_value(first);
                                   });
        while (started.load() < 1) {
            std::this_thread::yield();
        }
        // Let the destructor run against a blocked worker; it requests
        // cancellation, the gate opens, the in-flight item completes and
        // the rest are skipped.
        std::thread opener([&] {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            gate.set_value();
        });
        opener.detach();
    }
    ASSERT_TRUE(handle.finished());
    EXPECT_EQ(handle.state(), job_state::cancelled);
    for (const auto& item : handle.completed()) {
        EXPECT_EQ(item.value, item_value(item.index));
    }
}

// --- Engine sessions over the queue ----------------------------------------

analyzer_settings fast_settings() {
    analyzer_settings settings;
    settings.evaluator.modulator = sd::modulator_params::ideal();
    settings.evaluator.offset = eval::offset_mode::none;
    settings.periods = 50;
    settings.settle_periods = 16;
    return settings;
}

board_factory paper_factory() {
    return [](std::uint64_t seed) {
        core::demonstrator_board board(gen::generator_params::ideal(),
                                       dut::make_paper_dut(0.01, seed));
        board.set_amplitude(millivolt(150.0));
        return board;
    };
}

sweep_engine make_engine(std::size_t threads, std::size_t lanes,
                         std::shared_ptr<job_queue> queue = nullptr) {
    sweep_engine_options options;
    options.threads = threads;
    options.batch_lanes = lanes;
    options.queue = std::move(queue);
    return sweep_engine(paper_factory(), fast_settings(), options);
}

void expect_reports_identical(const core::screening_report& a,
                              const core::screening_report& b) {
    EXPECT_EQ(a.passed, b.passed);
    EXPECT_EQ(a.stimulus_volts, b.stimulus_volts);
    EXPECT_EQ(a.offset_rate, b.offset_rate);
    ASSERT_EQ(a.limits.size(), b.limits.size());
    for (std::size_t i = 0; i < a.limits.size(); ++i) {
        EXPECT_EQ(a.limits[i].measured_db, b.limits[i].measured_db);
        EXPECT_EQ(a.limits[i].phase_deg, b.limits[i].phase_deg);
        EXPECT_EQ(a.limits[i].margin_db, b.limits[i].margin_db);
    }
}

TEST(JobQueue, StreamedScreeningIsBitIdenticalAtEveryThreadLaneCombo) {
    const auto mask = spec_mask::paper_lowpass();
    const std::size_t dice = 9;
    const auto reference = make_engine(1, 1).screen_batch(mask, dice, /*first_seed=*/3);

    for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
        for (std::size_t lanes : {std::size_t{1}, std::size_t{4}}) {
            auto engine = make_engine(threads, lanes);
            auto handle = engine.submit_screening(mask, dice, /*first_seed=*/3);
            std::vector<core::screening_report> streamed(dice);
            std::size_t pulled = 0;
            while (auto item = handle.next_completed()) {
                streamed[item->index] = std::move(item->value);
                ++pulled;
            }
            ASSERT_EQ(pulled, dice) << threads << " threads, " << lanes << " lanes";
            EXPECT_EQ(handle.state(), job_state::succeeded);
            for (std::size_t die = 0; die < dice; ++die) {
                expect_reports_identical(streamed[die], reference[die]);
            }
        }
    }
}

TEST(JobQueue, StreamedBodePointsMatchBlockingRun) {
    const auto frequencies = core::log_spaced(hertz{200.0}, kilohertz(4.0), 6);
    auto blocking_engine = make_engine(1, 1);
    const auto blocking = blocking_engine.run(frequencies);

    for (std::size_t lanes : {std::size_t{1}, std::size_t{3}}) {
        auto engine = make_engine(2, lanes);
        auto handle = engine.submit_bode(frequencies);
        std::vector<core::frequency_point> streamed(frequencies.size());
        while (auto item = handle.next_completed()) {
            streamed[item->index] = std::move(item->value);
        }
        ASSERT_EQ(handle.completed_items(), frequencies.size());
        for (std::size_t i = 0; i < frequencies.size(); ++i) {
            EXPECT_EQ(streamed[i].gain_db, blocking.points[i].gain_db) << "point " << i;
            EXPECT_EQ(streamed[i].phase_deg, blocking.points[i].phase_deg) << "point " << i;
            EXPECT_EQ(streamed[i].gain_db_bounds, blocking.points[i].gain_db_bounds);
        }
    }
}

TEST(JobQueue, StreamedAcquisitionMatchesBlockingAcquireAndFlagsThd) {
    const auto settings = fast_settings();
    const auto make_items = [&] {
        std::vector<sweep_engine::acquisition_item> items(5);
        for (std::size_t i = 0; i < items.size(); ++i) {
            items[i].make_board = [factory = paper_factory()] { return factory(1); };
            items[i].evaluator = settings.evaluator;
            items[i].evaluator.seed = core::sweep_item_seed(11, i);
        }
        return items;
    };
    sweep_engine::acquisition_program program;
    program.frequencies = {hertz{200.0}, hertz{1000.0}};

    auto engine = make_engine(2, 2);
    const auto blocking = engine.acquire(make_items(), program);

    // No distortion stage: the explicit flag says so, and thd_db carries
    // no pretend reading (NaN, not 0 dB).
    for (const auto& result : blocking) {
        EXPECT_FALSE(result.has_thd);
        EXPECT_TRUE(std::isnan(result.thd_db));
    }

    auto handle = engine.submit_acquisition(make_items(), program);
    std::vector<sweep_engine::acquisition_result> streamed(5);
    while (auto item = handle.next_completed()) {
        streamed[item->index] = std::move(item->value);
    }
    ASSERT_EQ(handle.state(), job_state::succeeded);
    for (std::size_t i = 0; i < streamed.size(); ++i) {
        EXPECT_EQ(streamed[i].calibration.amplitude.volts,
                  blocking[i].calibration.amplitude.volts);
        EXPECT_EQ(streamed[i].offset_rate, blocking[i].offset_rate);
        EXPECT_EQ(streamed[i].has_thd, blocking[i].has_thd);
        ASSERT_EQ(streamed[i].points.size(), blocking[i].points.size());
        for (std::size_t p = 0; p < streamed[i].points.size(); ++p) {
            EXPECT_EQ(streamed[i].points[p].gain_db, blocking[i].points[p].gain_db);
        }
    }

    // With a distortion stage the flag flips and the reading is real.
    program.distortion_max_harmonic = 3;
    const auto with_thd = engine.acquire(make_items(), program);
    for (const auto& result : with_thd) {
        EXPECT_TRUE(result.has_thd);
        EXPECT_FALSE(std::isnan(result.thd_db));
    }
}

TEST(JobQueue, EnginesSharingOnePoolStayBitIdentical) {
    const auto mask = spec_mask::paper_lowpass();
    const std::size_t dice = 6;
    const auto reference = make_engine(1, 1).screen_batch(mask, dice, /*first_seed=*/3);
    const auto bode_reference = make_engine(1, 1).run(core::log_spaced(hertz{200.0}, kilohertz(2.0), 5));

    auto queue = std::make_shared<job_queue>(4);
    auto screening_engine = make_engine(0, 2, queue);
    auto bode_engine = make_engine(0, 1, queue);
    EXPECT_EQ(screening_engine.resolved_threads(), 4u);

    // Two sessions in flight on one pool at once.
    auto screening = screening_engine.submit_screening(mask, dice, /*first_seed=*/3);
    auto bode = bode_engine.submit_bode(core::log_spaced(hertz{200.0}, kilohertz(2.0), 5));

    const auto reports = screening.results();
    const auto points = bode.results();
    ASSERT_EQ(reports.size(), dice);
    for (std::size_t die = 0; die < dice; ++die) {
        expect_reports_identical(reports[die], reference[die]);
    }
    ASSERT_EQ(points.size(), bode_reference.points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(points[i].gain_db, bode_reference.points[i].gain_db);
    }
}

TEST(JobQueue, MidLotCancellationKeepsTheCompletedSubsetBitIdentical) {
    const auto mask = spec_mask::paper_lowpass();
    const std::size_t dice = 24;
    const auto reference = make_engine(1, 1).screen_batch(mask, dice, /*first_seed=*/5);

    auto engine = make_engine(2, 1);
    auto handle = engine.submit_screening(mask, dice, /*first_seed=*/5);
    // Pull a couple of reports, then cancel the rest of the lot.
    std::size_t pulled = 0;
    while (pulled < 2) {
        auto item = handle.next_completed();
        ASSERT_TRUE(item.has_value());
        expect_reports_identical(item->value, reference[item->index]);
        ++pulled;
    }
    handle.cancel();
    handle.wait();
    ASSERT_TRUE(handle.finished());

    // Whatever completed -- streamed or not -- matches the synchronous
    // reference die for die; nothing half-measured ever surfaces.
    const auto completed = handle.completed();
    EXPECT_GE(completed.size(), 2u);
    for (const auto& item : completed) {
        expect_reports_identical(item.value, reference[item.index]);
    }
    if (completed.size() < dice) {
        EXPECT_EQ(handle.state(), job_state::cancelled);
    }
}

TEST(JobQueue, EngineWithPrivatePoolCanBeDroppedMidJob) {
    // Destroying an engine (and with it its private queue) while a
    // submitted job is still running must join the workers before any
    // other engine member dies: the handle ends terminal, every delivered
    // item bit-identical to the reference, nothing dangles (the sanitizer
    // jobs run this suite).
    const auto mask = spec_mask::paper_lowpass();
    const std::size_t dice = 16;
    const auto reference = make_engine(1, 1).screen_batch(mask, dice, /*first_seed=*/7);

    core::job_handle<core::screening_report> handle;
    {
        auto engine = make_engine(2, 1);
        handle = engine.submit_screening(mask, dice, /*first_seed=*/7);
        auto first = handle.next_completed();
        ASSERT_TRUE(first.has_value());
        expect_reports_identical(first->value, reference[first->index]);
    } // engine destroyed: private queue cancels pending dice and joins
    ASSERT_TRUE(handle.finished());
    for (const auto& item : handle.completed()) {
        expect_reports_identical(item.value, reference[item.index]);
    }
}

TEST(JobQueue, ScreeningWorkerExceptionSurfacesThroughTheStream) {
    board_factory throwing = [](std::uint64_t seed) -> core::demonstrator_board {
        if (seed >= 4) {
            throw configuration_error("die factory exploded");
        }
        core::demonstrator_board board(gen::generator_params::ideal(),
                                       dut::make_paper_dut(0.01, seed));
        board.set_amplitude(millivolt(150.0));
        return board;
    };
    sweep_engine_options options;
    options.threads = 2;
    sweep_engine engine(throwing, fast_settings(), options);
    auto handle = engine.submit_screening(spec_mask::paper_lowpass(), 8, /*first_seed=*/1);
    while (handle.next_completed()) {
    }
    EXPECT_EQ(handle.state(), job_state::failed);
    EXPECT_THROW(handle.results(), configuration_error);
}

// --- scheduling fairness ---------------------------------------------------

/// Submit a job whose tasks append `label` to a shared order log; task 0
/// optionally parks the worker until `gate` opens, so concurrent jobs can
/// be staged before any claims happen.
job_handle<int> submit_labelled(job_queue& queue, std::size_t items, char label,
                                std::mutex& mutex, std::vector<char>& order,
                                std::atomic<bool>* gate = nullptr) {
    return queue.submit<int>(items, 1,
                             [&, label, gate](std::size_t first, std::size_t, int* out) {
                                 if (gate != nullptr && first == 0) {
                                     while (!gate->load(std::memory_order_acquire)) {
                                         std::this_thread::sleep_for(
                                             std::chrono::milliseconds(1));
                                     }
                                 }
                                 {
                                     std::lock_guard<std::mutex> lock(mutex);
                                     order.push_back(label);
                                 }
                                 out[0] = 0;
                             });
}

TEST(JobQueue, FifoScheduleRunsJobsBackToBack) {
    job_queue queue(1, core::job_schedule::fifo);
    EXPECT_EQ(queue.schedule(), core::job_schedule::fifo);
    std::mutex mutex;
    std::vector<char> order;
    std::atomic<bool> gate{false};
    auto a = submit_labelled(queue, 4, 'A', mutex, order, &gate);
    auto b = submit_labelled(queue, 4, 'B', mutex, order);
    gate.store(true, std::memory_order_release);
    (void)a.results();
    (void)b.results();
    EXPECT_EQ(std::string(order.begin(), order.end()), "AAAABBBB");
}

TEST(JobQueue, RoundRobinScheduleInterleavesConcurrentJobs) {
    // One worker makes the claim order fully observable: task 0 of A
    // parks it until both jobs are queued, then round-robin must
    // alternate A/B claims instead of draining A first.
    job_queue queue(1, core::job_schedule::round_robin);
    EXPECT_EQ(queue.schedule(), core::job_schedule::round_robin);
    std::mutex mutex;
    std::vector<char> order;
    std::atomic<bool> gate{false};
    auto a = submit_labelled(queue, 6, 'A', mutex, order, &gate);
    auto b = submit_labelled(queue, 6, 'B', mutex, order);
    gate.store(true, std::memory_order_release);
    (void)a.results();
    (void)b.results();
    EXPECT_EQ(std::string(order.begin(), order.end()), "ABABABABABAB");
}

TEST(JobQueue, RoundRobinStaysFairAsJobsComeAndGo) {
    // A short job among long ones: once it drains, the rotation continues
    // over the survivors without skipping or double-serving anyone.
    job_queue queue(1, core::job_schedule::round_robin);
    std::mutex mutex;
    std::vector<char> order;
    std::atomic<bool> gate{false};
    auto a = submit_labelled(queue, 5, 'A', mutex, order, &gate);
    auto b = submit_labelled(queue, 2, 'B', mutex, order);
    auto c = submit_labelled(queue, 5, 'C', mutex, order);
    gate.store(true, std::memory_order_release);
    (void)a.results();
    (void)b.results();
    (void)c.results();
    EXPECT_EQ(std::string(order.begin(), order.end()), "ABCABCACACAC");
}

TEST(JobQueue, TryNextInOrderNeverBlocks) {
    job_queue queue(2);
    std::atomic<bool> gate{false};
    auto handle = queue.submit<int>(4, 1, [&](std::size_t first, std::size_t, int* out) {
        while (!gate.load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        out[0] = item_value(first);
    });
    // Nothing has completed: the non-blocking probe reports "not yet"
    // instead of parking the caller.
    EXPECT_FALSE(handle.try_next_in_order().has_value());
    EXPECT_FALSE(handle.finished());
    gate.store(true, std::memory_order_release);
    std::size_t delivered = 0;
    while (delivered < 4) {
        if (auto item = handle.try_next_in_order()) {
            EXPECT_EQ(item->index, delivered);
            EXPECT_EQ(item->value, item_value(item->index));
            ++delivered;
        } else {
            // Not ready yet (or the publish/terminal-flip race): probing
            // again is always safe -- the call never blocks.
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    }
    EXPECT_EQ(handle.in_order_delivered(), 4u);
    EXPECT_FALSE(handle.try_next_in_order().has_value());
}

} // namespace
