// Network-analyzer integration: measured Bode points must agree with the
// ground-truth response of the drawn DUT, within the eq. (4)/(5) bounds
// plus small documented systematics.
#include <gtest/gtest.h>

#include <cmath>

#include "core/network_analyzer.hpp"
#include "core/sweep.hpp"
#include "dut/filters.hpp"
#include "dut/nonlinear.hpp"

namespace {

using namespace bistna;
using core::analyzer_settings;
using core::demonstrator_board;
using core::network_analyzer;

analyzer_settings ideal_settings() {
    analyzer_settings settings;
    settings.evaluator.modulator = sd::modulator_params::ideal();
    settings.evaluator.offset = eval::offset_mode::none;
    settings.periods = 200;
    return settings;
}

TEST(NetworkAnalyzer, PassbandPointMatchesGroundTruth) {
    demonstrator_board board(gen::generator_params::ideal(), dut::make_paper_dut(0.0, 1));
    board.set_amplitude(millivolt(150.0));
    network_analyzer analyzer(board, ideal_settings());
    const auto point = analyzer.measure_point(hertz{200.0});
    EXPECT_NEAR(point.gain_db, point.ideal_gain_db, 0.1);
    EXPECT_NEAR(point.phase_deg, point.ideal_phase_deg, 1.0);
}

TEST(NetworkAnalyzer, CutoffPointShowsMinus3Db) {
    demonstrator_board board(gen::generator_params::ideal(), dut::make_paper_dut(0.0, 1));
    board.set_amplitude(millivolt(150.0));
    network_analyzer analyzer(board, ideal_settings());
    const auto point = analyzer.measure_point(kilohertz(1.0));
    EXPECT_NEAR(point.gain_db, -3.0, 0.35);
    EXPECT_NEAR(point.phase_deg, -90.0, 2.0);
}

TEST(NetworkAnalyzer, StopbandPointWithinBounds) {
    demonstrator_board board(gen::generator_params::ideal(), dut::make_paper_dut(0.0, 1));
    board.set_amplitude(millivolt(150.0));
    network_analyzer analyzer(board, ideal_settings());
    const auto point = analyzer.measure_point(kilohertz(8.0));
    // ~ -36 dB; eq. (4) bounds widen at low output amplitude.
    EXPECT_NEAR(point.gain_db, point.ideal_gain_db, 1.0);
    EXPECT_TRUE(point.gain_db_bounds.contains(point.gain_db));
    EXPECT_GT(point.gain_db_bounds.width(), 0.0);
}

TEST(NetworkAnalyzer, SweepTracksButterworthShape) {
    demonstrator_board board(gen::generator_params::ideal(), dut::make_paper_dut(0.0, 1));
    board.set_amplitude(millivolt(150.0));
    network_analyzer analyzer(board, ideal_settings());
    const auto points = analyzer.bode_sweep(core::log_spaced(hertz{150.0}, kilohertz(6.0), 7));
    for (const auto& p : points) {
        EXPECT_NEAR(p.gain_db, p.ideal_gain_db, 0.6) << p.f_wave.value << " Hz";
        EXPECT_NEAR(p.phase_deg, p.ideal_phase_deg, 4.0) << p.f_wave.value << " Hz";
    }
    // Monotonically falling gain and phase for a low-pass.
    for (std::size_t i = 1; i < points.size(); ++i) {
        EXPECT_LT(points[i].gain_db, points[i - 1].gain_db + 0.1);
        EXPECT_LT(points[i].phase_deg, points[i - 1].phase_deg + 2.0);
    }
}

TEST(NetworkAnalyzer, CalibrationIsCachedAndReused) {
    demonstrator_board board(gen::generator_params::ideal(), dut::make_paper_dut(0.0, 1));
    board.set_amplitude(millivolt(150.0));
    network_analyzer analyzer(board, ideal_settings());
    const auto& first = analyzer.calibrate();
    const auto& second = analyzer.calibrate();
    EXPECT_EQ(&first, &second); // one-time calibration (paper section III.C)
    EXPECT_NEAR(first.amplitude.volts, 0.3, 0.01);
}

TEST(NetworkAnalyzer, RecalibratePerPointAgreesWithCached) {
    demonstrator_board board(gen::generator_params::ideal(), dut::make_paper_dut(0.0, 1));
    board.set_amplitude(millivolt(150.0));

    auto cached_settings = ideal_settings();
    network_analyzer cached(board, cached_settings);
    auto fresh_settings = ideal_settings();
    fresh_settings.recalibrate_per_point = true;
    network_analyzer fresh(board, fresh_settings);

    const auto a = cached.measure_point(hertz{500.0});
    const auto b = fresh.measure_point(hertz{500.0});
    // The clock-normalized stimulus makes one-time calibration equivalent.
    EXPECT_NEAR(a.gain_db, b.gain_db, 0.05);
    EXPECT_NEAR(a.phase_deg, b.phase_deg, 0.5);
}

TEST(NetworkAnalyzer, DistortionModeReportsCalibratedHd) {
    demonstrator_board board(gen::generator_params::ideal(),
                             dut::make_paper_dut_with_distortion(0.0, 7));
    board.set_amplitude(millivolt(200.0)); // 0.4 V stimulus = 800 mVpp
    auto settings = ideal_settings();
    settings.distortion_periods = 400;
    network_analyzer analyzer(board, settings);
    const auto result = analyzer.measure_distortion(kilohertz(1.6), 3);
    ASSERT_EQ(result.harmonic_dbc.size(), 2u);
    EXPECT_NEAR(result.harmonic_dbc[0], -56.0, 3.0); // Fig. 10c HD2
    EXPECT_NEAR(result.harmonic_dbc[1], -62.0, 4.0); // Fig. 10c HD3
}

TEST(NetworkAnalyzer, NonIdealBoardStillTracksWithinTolerance) {
    gen::generator_params gen_params; // cmos035 defaults
    gen_params.seed = 5;
    demonstrator_board board(gen_params, dut::make_paper_dut(0.01, 3));
    board.set_amplitude(millivolt(150.0));
    auto settings = ideal_settings();
    settings.evaluator.modulator = sd::modulator_params::cmos035();
    settings.evaluator.offset = eval::offset_mode::calibrated;
    network_analyzer analyzer(board, settings);
    const auto point = analyzer.measure_point(hertz{400.0});
    EXPECT_NEAR(point.gain_db, point.ideal_gain_db, 0.3);
    EXPECT_NEAR(point.phase_deg, point.ideal_phase_deg, 2.0);
}

} // namespace
