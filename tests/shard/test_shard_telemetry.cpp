// Shard fleet observability: workers leave telemetry-snapshot sidecars and
// structured event-log lines behind; the coordinator collects the
// snapshots, merges fleet metrics, and exports one cross-process Chrome
// trace with a lane per worker.  Workers are this test binary re-executed
// with --bistna-shard-worker (tests/main.cpp), same as the supervisor
// suite.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "shard/coordinator.hpp"
#include "shard/event_log.hpp"
#include "shard/manifest.hpp"
#include "telemetry/snapshot.hpp"
#include "telemetry/trace_export.hpp"

namespace {

using namespace bistna;

class temp_dir {
public:
    explicit temp_dir(const char* name) : path_(std::string("/tmp/") + name) {
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~temp_dir() { std::filesystem::remove_all(path_); }
    const std::string& path() const { return path_; }
    std::string file(const std::string& name) const { return path_ + "/" + name; }

private:
    std::string path_;
};

shard::lot_manifest fast_manifest(std::uint64_t dice) {
    shard::lot_manifest manifest;
    manifest.periods = 20;
    manifest.settle_periods = 4;
    manifest.distortion_periods = 40;
    manifest.calibration_periods = 256;
    manifest.dice = dice;
    manifest.first_seed = 1;
    manifest.threads = 1;
    manifest.batch_lanes = 4;
    return manifest;
}

std::vector<std::string> self_worker_command() {
    return {"/proc/self/exe", "--bistna-shard-worker=1"};
}

std::string read_text(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

TEST(ShardTelemetry, SidecarsCollectIntoFleetMetricsAndOneTrace) {
    temp_dir dir("bistna_shard_telemetry_clean");
    const auto manifest = fast_manifest(6);

    shard::supervisor_options options;
    options.worker_command = self_worker_command();
    options.shards = 3;
    options.shard_dir = dir.file("shards");
    options.telemetry_sidecars = true;

    const auto report = shard::run_lot(manifest, dir.file("lot.store"), options);
    EXPECT_EQ(report.merge.records_merged, 6u);

    // One snapshot per successful attempt, each a named worker process.
    ASSERT_EQ(report.worker_snapshots.size(), 3u);
    std::set<std::string> process_names;
    for (const auto& snapshot : report.worker_snapshots) {
        process_names.insert(snapshot.process_name);
        EXPECT_GT(snapshot.pid, 0u);
        EXPECT_FALSE(snapshot.spans.empty());
    }
    EXPECT_EQ(process_names,
              (std::set<std::string>{"shard-0", "shard-1", "shard-2"}));

    // Fleet rollup: every worker metered its own engine run; together they
    // computed exactly the lot.
    const auto fleet = telemetry::merge_metrics(report.worker_snapshots);
    EXPECT_EQ(fleet.counter("job_queue.items_computed"), 6u);
    EXPECT_EQ(fleet.counter("store.frames"), 6u);

    // The merged Chrome trace: one process lane per worker, engine-stage
    // spans present, and it parses under the strict JSON parser.
    const std::string text =
        telemetry::chrome_trace_json(report.worker_snapshots);
    const json_value root = parse_json(text, "trace JSON");
    const json_value* events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    std::set<std::string> lanes;
    std::set<std::string> span_names;
    for (const auto& event : events->elements) {
        if (event.find("ph")->str == "M" &&
            event.find("name")->str == "process_name") {
            lanes.insert(event.find("args")->find("name")->str);
        }
        if (event.find("ph")->str == "X") {
            span_names.insert(event.find("name")->str);
        }
    }
    EXPECT_EQ(lanes, (std::set<std::string>{"shard-0", "shard-1", "shard-2"}));
    EXPECT_TRUE(span_names.contains("shard.stream"));
    EXPECT_TRUE(span_names.contains("engine.render"));
}

TEST(ShardTelemetry, WorkerLogsAreStructuredEventLines) {
    temp_dir dir("bistna_shard_telemetry_logs");
    const auto manifest = fast_manifest(4);

    shard::supervisor_options options;
    options.worker_command = self_worker_command();
    options.shards = 2;
    options.shard_dir = dir.file("shards");
    std::vector<std::string> supervisor_lines;
    options.on_event = [&](const std::string& line) {
        supervisor_lines.push_back(line);
    };

    const auto result = shard::run_shards(manifest, options);
    ASSERT_EQ(result.attempts.size(), 2u);

    // Worker side: every line is ts_us= first, then shard/attempt/event.
    for (const auto& attempt : result.attempts) {
        const std::string log = read_text(attempt.log_path);
        ASSERT_FALSE(log.empty());
        std::istringstream lines(log);
        std::string line;
        std::vector<std::string> events;
        while (std::getline(lines, line)) {
            EXPECT_EQ(line.rfind("ts_us=", 0), 0u) << line;
            EXPECT_NE(line.find(" shard=" + std::to_string(attempt.shard)),
                      std::string::npos)
                << line;
            EXPECT_NE(line.find(" attempt=1"), std::string::npos) << line;
            const auto pos = line.find(" event=");
            ASSERT_NE(pos, std::string::npos) << line;
            events.push_back(line.substr(pos + 7, line.find(' ', pos + 7) -
                                                      (pos + 7)));
        }
        ASSERT_EQ(events.size(), 2u);
        EXPECT_EQ(events[0], "start");
        EXPECT_EQ(events[1], "done");
    }

    // Supervisor side: spawned + completed per shard, same grammar.
    ASSERT_EQ(supervisor_lines.size(), 4u);
    for (const auto& line : supervisor_lines) {
        EXPECT_EQ(line.rfind("ts_us=", 0), 0u) << line;
        EXPECT_NE(line.find(" event="), std::string::npos) << line;
    }
}

TEST(ShardTelemetry, EventLineSanitizesFreeText) {
    shard::event_line line("error", 3, 2);
    line.field("what", std::string("bad value = 7\nnext\tline"));
    const std::string& text = line.str();
    EXPECT_EQ(text.rfind("ts_us=", 0), 0u);
    EXPECT_NE(text.find(" shard=3 attempt=2 event=error"), std::string::npos);
    // No embedded spaces, newlines, tabs or '=' in the value.
    EXPECT_NE(text.find("what=bad_value___7_next_line"), std::string::npos);
}

TEST(ShardTelemetry, ExhaustedShardDiagnosticsIncludeTheLogTail) {
    temp_dir dir("bistna_shard_telemetry_fail");
    const auto manifest = fast_manifest(4);

    shard::supervisor_options options;
    options.worker_command = self_worker_command();
    options.shards = 2;
    options.max_attempts = 1;
    options.shard_dir = dir.file("shards");
    // Every attempt dies mid-frame, so the single allowed attempt exhausts.
    options.extra_worker_args = {"--kill-after-records=1", "--kill-attempt=1"};

    try {
        shard::run_shards(manifest, options);
        FAIL() << "exhausted shard must throw";
    } catch (const configuration_error& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("see "), std::string::npos) << what;
        // The worker's structured start line made it into the diagnostic.
        EXPECT_NE(what.find("log tail:"), std::string::npos) << what;
        EXPECT_NE(what.find("event=start"), std::string::npos) << what;
    }
}

} // namespace
