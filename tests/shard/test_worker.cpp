// Shard worker (in-process): splitting a lot across shard ranges and
// merging the shard stores must reproduce the single-process store BYTE
// FOR BYTE -- the tentpole contract, checked here at shard counts
// {1, 2, 4, 7} for the screening workload and across a severity-grid
// dictionary build, without any process spawning.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "shard/manifest.hpp"
#include "shard/merger.hpp"
#include "shard/plan.hpp"
#include "shard/worker.hpp"
#include "store/lot_store.hpp"
#include "store/records.hpp"

namespace {

using namespace bistna;

class temp_dir {
public:
    explicit temp_dir(const char* name) : path_(std::string("/tmp/") + name) {
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~temp_dir() { std::filesystem::remove_all(path_); }
    std::string file(const std::string& name) const { return path_ + "/" + name; }

private:
    std::string path_;
};

/// Short-acquisition settings: enough periods for stable measurements,
/// small enough that a multi-shard sweep stays test-sized.
shard::lot_manifest fast_manifest() {
    shard::lot_manifest manifest;
    manifest.periods = 20;
    manifest.settle_periods = 4;
    manifest.distortion_periods = 40;
    manifest.calibration_periods = 256;
    manifest.dice = 10;
    manifest.first_seed = 1;
    manifest.threads = 1;
    manifest.batch_lanes = 4;
    return manifest;
}

std::string read_bytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

/// Run the lot sharded `shards` ways, merge, and return the merged bytes.
std::string sharded_bytes(const temp_dir& dir, const shard::lot_manifest& manifest,
                          std::size_t shards, std::size_t flush_interval) {
    std::vector<std::string> files;
    for (const auto& range : shard::plan_shards(manifest.total_units(), shards)) {
        shard::worker_shard_options options;
        options.first_unit = range.first;
        options.units = range.units;
        options.flush_interval = flush_interval;
        const std::string path =
            dir.file("s" + std::to_string(shards) + "-" + std::to_string(range.index));
        const auto report = shard::run_worker_shard(manifest, path, options);
        EXPECT_EQ(report.records, range.units);
        files.push_back(path);
    }
    const std::string merged = dir.file("merged-" + std::to_string(shards));
    const auto stats =
        shard::merge_shard_stores(files, merged, manifest.record_id(0),
                                  manifest.total_units());
    EXPECT_EQ(stats.records_merged, manifest.total_units());
    EXPECT_EQ(stats.duplicates_dropped, 0u);
    return read_bytes(merged);
}

TEST(ShardWorker, ScreeningLotBitIdenticalAtAnyShardCount) {
    temp_dir dir("bistna_worker_screening");
    const auto manifest = fast_manifest();

    // The single-process oracle: one worker, the whole lot.
    shard::worker_shard_options whole;
    whole.units = manifest.total_units();
    shard::run_worker_shard(manifest, dir.file("oracle"), whole);
    const std::string oracle = read_bytes(dir.file("oracle"));
    ASSERT_FALSE(oracle.empty());

    // Every shard count -- even 7 ways across 10 dice -- and every flush
    // cadence must reproduce the oracle byte for byte.
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                     std::size_t{7}}) {
        EXPECT_EQ(sharded_bytes(dir, manifest, shards, shards % 2 == 0 ? 3 : 1),
                  oracle)
            << "merged store diverged at " << shards << " shards";
    }
}

TEST(ShardWorker, DictionaryBuildBitIdenticalAcrossShards) {
    temp_dir dir("bistna_worker_dictionary");
    auto manifest = fast_manifest();
    manifest.workload = shard::workload_kind::dictionary;
    manifest.grid_points = 2;
    manifest.thd_max_harmonic = 0;

    shard::worker_shard_options whole;
    whole.units = manifest.total_units();
    shard::run_worker_shard(manifest, dir.file("oracle"), whole);
    const std::string oracle = read_bytes(dir.file("oracle"));

    EXPECT_EQ(sharded_bytes(dir, manifest, 3, 8), oracle)
        << "sharded severity-grid build diverged from the single-process build";
}

TEST(ShardWorker, EmptyShardWritesAValidEmptyStore) {
    temp_dir dir("bistna_worker_empty");
    const auto manifest = fast_manifest();
    shard::worker_shard_options options;
    options.first_unit = manifest.total_units(); // an empty trailing shard
    options.units = 0;
    const auto report =
        shard::run_worker_shard(manifest, dir.file("empty"), options);
    EXPECT_EQ(report.records, 0u);
    EXPECT_TRUE(store::lot_store::scan(dir.file("empty")).empty());
}

TEST(ShardWorker, ShardRangeBeyondTheLotThrows) {
    temp_dir dir("bistna_worker_range");
    const auto manifest = fast_manifest();
    shard::worker_shard_options options;
    options.first_unit = manifest.total_units() - 1;
    options.units = 2;
    EXPECT_THROW((void)shard::run_worker_shard(manifest, dir.file("bad"), options),
                 precondition_error);
}

TEST(ShardWorker, StoredRecordsCarryGlobalDieSeeds) {
    temp_dir dir("bistna_worker_ids");
    auto manifest = fast_manifest();
    manifest.dice = 4;
    manifest.first_seed = 100;
    shard::worker_shard_options options;
    options.first_unit = 2;
    options.units = 2;
    shard::run_worker_shard(manifest, dir.file("tail"), options);
    const auto records = store::lot_store::scan(dir.file("tail"));
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(store::report_from_record(records[0]).die, 102u);
    EXPECT_EQ(store::report_from_record(records[1]).die, 103u);
}

} // namespace
