// Lot manifest: the JSON contract every worker process loads.  Round
// trips must be exact (a retried worker re-reading the manifest must run
// the identical lot) and parsing must be strict (a typo in a hand-written
// manifest fails loudly, never silently runs the defaults).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/error.hpp"
#include "diag/fault_model.hpp"
#include "shard/manifest.hpp"

namespace {

using namespace bistna;

class temp_file {
public:
    explicit temp_file(const char* name) : path_(std::string("/tmp/") + name) {
        std::remove(path_.c_str());
    }
    ~temp_file() { std::remove(path_.c_str()); }
    const std::string& path() const { return path_; }

private:
    std::string path_;
};

TEST(ShardManifest, DefaultsRoundTripThroughJson) {
    const shard::lot_manifest manifest;
    const std::string json = manifest.to_json();
    const shard::lot_manifest parsed = shard::lot_manifest::from_json(json);
    // to_json is deterministic, so string equality is full field equality.
    EXPECT_EQ(parsed.to_json(), json);
    EXPECT_EQ(parsed.workload, shard::workload_kind::screening);
    EXPECT_EQ(parsed.dice, manifest.dice);
    EXPECT_EQ(parsed.first_seed, manifest.first_seed);
}

TEST(ShardManifest, NonDefaultFieldsRoundTrip) {
    shard::lot_manifest manifest;
    manifest.workload = shard::workload_kind::dictionary;
    manifest.sigma = 0.05;
    manifest.amplitude_mv = 120.5;
    manifest.ideal_generator = false;
    manifest.ideal_modulator = false;
    manifest.offset = eval::offset_mode::chopped;
    manifest.evaluator_seed = 99;
    manifest.periods = 64;
    manifest.settle_periods = 8;
    manifest.calibration_periods = 512;
    manifest.custom_limits.push_back(
        core::gain_limit{1000.0, -2.25, 0.5, "pass band"});
    manifest.stimulus_volts_nominal = 0.31;
    manifest.stimulus_tolerance = 0.07;
    manifest.measure_distortion = true;
    manifest.continue_after_self_test_failure = true;
    manifest.dice = 4096;
    manifest.first_seed = 1000;
    manifest.grid_points = 5;
    manifest.thd_max_harmonic = 4;
    manifest.nominal_seed = 3;
    manifest.eval_seed_base = 0xABCDEF;
    manifest.threads = 2;
    manifest.batch_lanes = 16;
    manifest.pipeline = core::sweep_pipeline::reference;

    const shard::lot_manifest parsed =
        shard::lot_manifest::from_json(manifest.to_json());
    EXPECT_EQ(parsed.to_json(), manifest.to_json());
    EXPECT_EQ(parsed.workload, shard::workload_kind::dictionary);
    ASSERT_EQ(parsed.custom_limits.size(), 1u);
    EXPECT_EQ(parsed.custom_limits[0].name, "pass band");
    EXPECT_EQ(parsed.custom_limits[0].gain_db_min, -2.25);
    ASSERT_TRUE(parsed.stimulus_tolerance.has_value());
    EXPECT_EQ(*parsed.stimulus_tolerance, 0.07);
    EXPECT_EQ(parsed.pipeline, core::sweep_pipeline::reference);
}

TEST(ShardManifest, SaveLoadRoundTrip) {
    temp_file file("bistna_manifest_roundtrip.json");
    shard::lot_manifest manifest;
    manifest.dice = 123;
    manifest.first_seed = 7;
    manifest.save(file.path());
    const shard::lot_manifest loaded = shard::lot_manifest::load(file.path());
    EXPECT_EQ(loaded.to_json(), manifest.to_json());
}

TEST(ShardManifest, RejectsMalformedJson) {
    EXPECT_THROW((void)shard::lot_manifest::from_json(""), configuration_error);
    EXPECT_THROW((void)shard::lot_manifest::from_json("{"), configuration_error);
    EXPECT_THROW((void)shard::lot_manifest::from_json("{} trailing"),
                 configuration_error);
    EXPECT_THROW((void)shard::lot_manifest::from_json("{\"dice\": }"),
                 configuration_error);
    EXPECT_THROW((void)shard::lot_manifest::from_json("{\"dice\": \"many\"}"),
                 configuration_error);
    EXPECT_THROW((void)shard::lot_manifest::from_json("{\"dice\": -3}"),
                 configuration_error);
    EXPECT_THROW((void)shard::lot_manifest::from_json("{\"dice\": 1.5}"),
                 configuration_error);
}

TEST(ShardManifest, RejectsUnknownAndDuplicateKeys) {
    EXPECT_THROW((void)shard::lot_manifest::from_json("{\"dyce\": 8}"),
                 configuration_error);
    EXPECT_THROW(
        (void)shard::lot_manifest::from_json("{\"engine\": {\"cores\": 4}}"),
        configuration_error);
    EXPECT_THROW((void)shard::lot_manifest::from_json("{\"dice\": 8, \"dice\": 9}"),
                 configuration_error);
    EXPECT_THROW((void)shard::lot_manifest::from_json("{\"workload\": \"sharding\"}"),
                 configuration_error);
}

TEST(ShardManifest, UnitAndRecordIdAccounting) {
    shard::lot_manifest screening;
    screening.dice = 100;
    screening.first_seed = 17;
    EXPECT_EQ(screening.total_units(), 100u);
    EXPECT_EQ(screening.record_id(0), 17u);
    EXPECT_EQ(screening.record_id(99), 116u);

    shard::lot_manifest dictionary;
    dictionary.workload = shard::workload_kind::dictionary;
    dictionary.grid_points = 3;
    // 1 healthy reference + one item per (catalog fault, grid point).
    EXPECT_EQ(dictionary.total_units(), 1 + diag::default_catalog().size() * 3);
    EXPECT_EQ(dictionary.record_id(0), 0u);
    EXPECT_EQ(dictionary.record_id(7), 7u);
}

TEST(ShardManifest, MissingManifestFileThrows) {
    EXPECT_THROW((void)shard::lot_manifest::load("/nonexistent/lot.json"),
                 configuration_error);
}

} // namespace
