// Shard supervisor: real process fleets.  The worker processes here are
// THIS test binary re-executed with the --bistna-shard-worker dispatch
// flag (see tests/main.cpp), so the suite is self-contained -- it needs no
// example binaries and runs identically under the sanitizer CI builds.
// Fault injection (--kill-after-records, --stall-ms) manufactures dead and
// straggler workers on demand; the contract is that the fleet still
// converges and the merged store is byte-identical to the single-process
// one.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "shard/manifest.hpp"
#include "shard/merger.hpp"
#include "shard/supervisor.hpp"
#include "shard/worker.hpp"

namespace {

using namespace bistna;

class temp_dir {
public:
    explicit temp_dir(const char* name) : path_(std::string("/tmp/") + name) {
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~temp_dir() { std::filesystem::remove_all(path_); }
    const std::string& path() const { return path_; }
    std::string file(const std::string& name) const { return path_ + "/" + name; }

private:
    std::string path_;
};

shard::lot_manifest fast_manifest(std::uint64_t dice) {
    shard::lot_manifest manifest;
    manifest.periods = 20;
    manifest.settle_periods = 4;
    manifest.distortion_periods = 40;
    manifest.calibration_periods = 256;
    manifest.dice = dice;
    manifest.first_seed = 1;
    manifest.threads = 1;
    manifest.batch_lanes = 4;
    return manifest;
}

/// This test binary doubles as the worker process (tests/main.cpp).
std::vector<std::string> self_worker_command() {
    return {"/proc/self/exe", "--bistna-shard-worker=1"};
}

std::string read_bytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

std::string single_process_bytes(const temp_dir& dir,
                                 const shard::lot_manifest& manifest) {
    shard::worker_shard_options whole;
    whole.units = manifest.total_units();
    shard::run_worker_shard(manifest, dir.file("oracle"), whole);
    return read_bytes(dir.file("oracle"));
}

TEST(ShardSupervisor, FleetMergesByteIdenticalToSingleProcess) {
    temp_dir dir("bistna_supervisor_clean");
    const auto manifest = fast_manifest(6);

    shard::supervisor_options options;
    options.worker_command = self_worker_command();
    options.shards = 3;
    options.max_processes = 2; // fewer workers than shards: queued shards wait
    options.shard_dir = dir.file("shards");
    const auto result = shard::run_shards(manifest, options);

    EXPECT_EQ(result.plan.size(), 3u);
    EXPECT_EQ(result.attempts.size(), 3u);
    EXPECT_EQ(result.retries, 0u);
    for (const auto& attempt : result.attempts) {
        EXPECT_TRUE(attempt.succeeded);
    }

    const auto stats = shard::merge_shard_stores(
        result.shard_files, dir.file("merged"), manifest.record_id(0),
        manifest.total_units());
    EXPECT_EQ(stats.records_merged, manifest.total_units());
    EXPECT_EQ(read_bytes(dir.file("merged")), single_process_bytes(dir, manifest));
}

TEST(ShardSupervisor, KilledWorkersAreRetriedAndMergeStaysIdentical) {
    temp_dir dir("bistna_supervisor_kill");
    const auto manifest = fast_manifest(6);

    shard::supervisor_options options;
    options.worker_command = self_worker_command();
    options.shards = 2;
    options.max_attempts = 2;
    options.shard_dir = dir.file("shards");
    // Attempt 1 of every shard dies by SIGKILL mid-write after one record;
    // attempt 2 (no longer matching --kill-attempt) completes.
    options.extra_worker_args = {"--kill-after-records=1", "--kill-attempt=1"};
    const auto result = shard::run_shards(manifest, options);

    EXPECT_EQ(result.retries, 2u);
    EXPECT_EQ(result.attempts.size(), 4u);

    // The merge sees every attempt file: the torn partials of the killed
    // attempts AND the complete retries.  Dedupe + tail recovery must make
    // that indistinguishable from a clean single-process run.
    const auto stats = shard::merge_shard_stores(
        result.shard_files, dir.file("merged"), manifest.record_id(0),
        manifest.total_units());
    EXPECT_EQ(stats.torn_files, 2u);
    EXPECT_EQ(stats.duplicates_dropped, 2u);
    EXPECT_EQ(stats.records_merged, manifest.total_units());
    EXPECT_EQ(read_bytes(dir.file("merged")), single_process_bytes(dir, manifest));
}

TEST(ShardSupervisor, StragglerIsKilledAndRetried) {
    temp_dir dir("bistna_supervisor_straggler");
    const auto manifest = fast_manifest(2);

    shard::supervisor_options options;
    options.worker_command = self_worker_command();
    options.shards = 2;
    options.max_attempts = 2;
    options.straggler_timeout_seconds = 0.5;
    options.shard_dir = dir.file("shards");
    // Attempt 1 of every shard hangs far past the timeout; the supervisor
    // must SIGKILL it and let attempt 2 (which does not stall) finish.
    options.extra_worker_args = {"--stall-ms=30000", "--stall-attempt=1"};
    const auto result = shard::run_shards(manifest, options);

    EXPECT_EQ(result.retries, 2u);
    std::size_t timed_out = 0;
    for (const auto& attempt : result.attempts) {
        timed_out += attempt.timed_out ? 1 : 0;
    }
    EXPECT_EQ(timed_out, 2u);

    const auto stats = shard::merge_shard_stores(
        result.shard_files, dir.file("merged"), manifest.record_id(0),
        manifest.total_units());
    EXPECT_EQ(stats.records_merged, manifest.total_units());
    EXPECT_EQ(read_bytes(dir.file("merged")), single_process_bytes(dir, manifest));
}

TEST(ShardSupervisor, ShardExhaustingItsAttemptsFailsTheRun) {
    temp_dir dir("bistna_supervisor_exhausted");
    const auto manifest = fast_manifest(2);

    shard::supervisor_options options;
    // The worker command pins a nonexistent manifest BEFORE the
    // supervisor's own --manifest flag (first match wins in the worker's
    // flag parser), so every attempt exits nonzero.
    options.worker_command = self_worker_command();
    options.worker_command.push_back("--manifest=/nonexistent/lot.json");
    options.shards = 1;
    options.max_attempts = 2;
    options.shard_dir = dir.file("shards");
    EXPECT_THROW((void)shard::run_shards(manifest, options), configuration_error);
}

TEST(ShardSupervisor, UnspawnableWorkerBinaryThrows) {
    temp_dir dir("bistna_supervisor_nospawn");
    const auto manifest = fast_manifest(2);

    shard::supervisor_options options;
    options.worker_command = {"/nonexistent/shard_worker_binary"};
    options.shards = 1;
    options.shard_dir = dir.file("shards");
    EXPECT_THROW((void)shard::run_shards(manifest, options), configuration_error);
}

TEST(ShardSupervisor, WritesManifestAndLogsIntoShardDir) {
    temp_dir dir("bistna_supervisor_artifacts");
    const auto manifest = fast_manifest(2);

    shard::supervisor_options options;
    options.worker_command = self_worker_command();
    options.shards = 2;
    options.shard_dir = dir.file("shards");
    std::vector<std::string> events;
    options.on_event = [&](const std::string& line) { events.push_back(line); };
    const auto result = shard::run_shards(manifest, options);

    // The manifest the workers actually loaded round-trips exactly.
    EXPECT_EQ(shard::lot_manifest::load(result.manifest_path).to_json(),
              manifest.to_json());
    for (const auto& attempt : result.attempts) {
        EXPECT_TRUE(std::filesystem::exists(attempt.log_path))
            << attempt.log_path;
    }
    EXPECT_FALSE(events.empty());
}

} // namespace
