// Shard-store merger: every messy input shape a retried worker fleet can
// produce -- empty shards, single-die shards, duplicate deliveries,
// out-of-order arrival, torn tails from killed attempts -- must fold back
// into a store byte-identical to the single-process one; holes and
// divergent duplicates must throw.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/screening.hpp"
#include "shard/merger.hpp"
#include "store/lot_store.hpp"
#include "store/records.hpp"

namespace {

using namespace bistna;

class temp_dir {
public:
    explicit temp_dir(const char* name) : path_(std::string("/tmp/") + name) {
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~temp_dir() { std::filesystem::remove_all(path_); }
    std::string file(const char* name) const { return path_ + "/" + name; }

private:
    std::string path_;
};

core::screening_report report_for_die(std::uint64_t die) {
    core::screening_report report;
    report.passed = (die % 2) == 0;
    report.self_test_passed = true;
    report.stimulus_volts = 0.3 + 0.001 * static_cast<double>(die);
    core::limit_result result;
    result.limit.name = "lp";
    result.measured_db = -1.0 - static_cast<double>(die);
    report.limits.push_back(result);
    return report;
}

/// Write a shard store holding exactly `ids`, in the given order.
void write_shard(const std::string& path, const std::vector<std::uint64_t>& ids) {
    auto lot = store::lot_store::create(path);
    for (std::uint64_t id : ids) {
        lot.append(store::to_record(report_for_die(id), id));
    }
}

std::string read_bytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

/// The oracle: the store a single worker covering [first, first + count)
/// would write -- all ids in order, one file.
std::string oracle_bytes(const temp_dir& dir, std::uint64_t first,
                         std::uint64_t count) {
    const std::string path = dir.file("oracle.store");
    std::vector<std::uint64_t> ids;
    for (std::uint64_t id = first; id < first + count; ++id) {
        ids.push_back(id);
    }
    write_shard(path, ids);
    return read_bytes(path);
}

TEST(ShardMerge, OutOfOrderShardsMergeToSingleProcessBytes) {
    temp_dir dir("bistna_merge_ooo");
    write_shard(dir.file("s0.store"), {10, 11, 12});
    write_shard(dir.file("s1.store"), {13, 14});
    write_shard(dir.file("s2.store"), {15, 16, 17});

    // Deliver the shards backwards: arrival order must not matter.
    const auto stats = shard::merge_shard_stores(
        {dir.file("s2.store"), dir.file("s0.store"), dir.file("s1.store")},
        dir.file("merged.store"), 10, 8);
    EXPECT_EQ(stats.files, 3u);
    EXPECT_EQ(stats.records_seen, 8u);
    EXPECT_EQ(stats.records_merged, 8u);
    EXPECT_EQ(stats.duplicates_dropped, 0u);
    EXPECT_EQ(stats.torn_files, 0u);
    EXPECT_EQ(read_bytes(dir.file("merged.store")), oracle_bytes(dir, 10, 8));
}

TEST(ShardMerge, EmptyAndSingleDieShardsAreValid) {
    temp_dir dir("bistna_merge_tiny");
    write_shard(dir.file("s0.store"), {0});
    write_shard(dir.file("s1.store"), {});  // shards > units: header only
    write_shard(dir.file("s2.store"), {1});
    write_shard(dir.file("s3.store"), {});

    const auto stats = shard::merge_shard_stores(
        {dir.file("s0.store"), dir.file("s1.store"), dir.file("s2.store"),
         dir.file("s3.store")},
        dir.file("merged.store"), 0, 2);
    EXPECT_EQ(stats.records_merged, 2u);
    EXPECT_EQ(read_bytes(dir.file("merged.store")), oracle_bytes(dir, 0, 2));
}

TEST(ShardMerge, DuplicateDeliveryIsDedupedByRecordId) {
    temp_dir dir("bistna_merge_dup");
    // A straggler finished its range late AND its retry also completed:
    // the whole range arrives twice.
    write_shard(dir.file("attempt1.store"), {5, 6, 7});
    write_shard(dir.file("attempt2.store"), {5, 6, 7});
    write_shard(dir.file("other.store"), {8, 9});

    const auto stats = shard::merge_shard_stores(
        {dir.file("attempt1.store"), dir.file("attempt2.store"),
         dir.file("other.store")},
        dir.file("merged.store"), 5, 5);
    EXPECT_EQ(stats.records_seen, 8u);
    EXPECT_EQ(stats.duplicates_dropped, 3u);
    EXPECT_EQ(stats.records_merged, 5u);
    EXPECT_EQ(read_bytes(dir.file("merged.store")), oracle_bytes(dir, 5, 5));
}

TEST(ShardMerge, TornAttemptPlusRetryMergesClean) {
    temp_dir dir("bistna_merge_torn");
    // Attempt 1 was SIGKILLed mid-frame: two whole records plus garbage.
    write_shard(dir.file("attempt1.store"), {0, 1});
    {
        std::ofstream torn(dir.file("attempt1.store"),
                           std::ios::binary | std::ios::app);
        torn << "\x01\x00partial-frame-garbage";
    }
    // The retry ran the shard wholesale.
    write_shard(dir.file("attempt2.store"), {0, 1, 2, 3});

    const auto stats = shard::merge_shard_stores(
        {dir.file("attempt1.store"), dir.file("attempt2.store")},
        dir.file("merged.store"), 0, 4);
    EXPECT_EQ(stats.torn_files, 1u);
    EXPECT_EQ(stats.records_seen, 6u);
    EXPECT_EQ(stats.duplicates_dropped, 2u);
    EXPECT_EQ(stats.records_merged, 4u);
    EXPECT_EQ(read_bytes(dir.file("merged.store")), oracle_bytes(dir, 0, 4));
}

TEST(ShardMerge, MissingAttemptFileIsSkipped) {
    temp_dir dir("bistna_merge_missing_file");
    // A worker killed before create(): its path never existed.
    write_shard(dir.file("good.store"), {0, 1, 2});
    const auto stats = shard::merge_shard_stores(
        {dir.file("never-created.store"), dir.file("good.store")},
        dir.file("merged.store"), 0, 3);
    EXPECT_EQ(stats.files, 1u);
    EXPECT_EQ(stats.records_merged, 3u);
}

TEST(ShardMerge, MissingRecordIdThrows) {
    temp_dir dir("bistna_merge_hole");
    write_shard(dir.file("s0.store"), {0, 1});
    write_shard(dir.file("s1.store"), {3}); // id 2 never delivered
    EXPECT_THROW((void)shard::merge_shard_stores(
                     {dir.file("s0.store"), dir.file("s1.store")},
                     dir.file("merged.store"), 0, 4),
                 configuration_error);
}

TEST(ShardMerge, OutOfRangeRecordIdThrows) {
    temp_dir dir("bistna_merge_range");
    write_shard(dir.file("s0.store"), {0, 1, 99});
    EXPECT_THROW((void)shard::merge_shard_stores({dir.file("s0.store")},
                                                 dir.file("merged.store"), 0, 3),
                 configuration_error);
}

TEST(ShardMerge, ConflictingDuplicateThrows) {
    temp_dir dir("bistna_merge_conflict");
    write_shard(dir.file("s0.store"), {0, 1});
    {
        // The "same" die with different measurements: a worker that broke
        // the bit-identity contract.  The merge must refuse to pick one.
        auto lot = store::lot_store::create(dir.file("s1.store"));
        auto divergent = report_for_die(1);
        divergent.stimulus_volts += 1e-9;
        lot.append(store::to_record(divergent, 1));
    }
    EXPECT_THROW((void)shard::merge_shard_stores(
                     {dir.file("s0.store"), dir.file("s1.store")},
                     dir.file("merged.store"), 0, 2),
                 configuration_error);
}

TEST(ShardMerge, NonStoreInputThrows) {
    temp_dir dir("bistna_merge_foreign");
    {
        std::ofstream out(dir.file("notastore.bin"), std::ios::binary);
        out << "die,passed\n0,1\n";
    }
    EXPECT_THROW((void)shard::merge_shard_stores({dir.file("notastore.bin")},
                                                 dir.file("merged.store"), 0, 1),
                 serialization_error);
}

} // namespace
