// The unit_stream seam: one manifest range in, store records in global
// unit order out -- the pipeline both the offline shard worker and the
// screening service stand on.  Checks in-order delivery, the non-blocking
// consumption loop, shared-pool bit-identity, cooperative cancel and
// empty ranges.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/job_queue.hpp"
#include "shard/manifest.hpp"
#include "shard/unit_stream.hpp"
#include "store/format.hpp"

namespace {

using namespace bistna;
using shard::unit_stream;

/// Short-acquisition settings keeping a multi-stream test test-sized.
shard::lot_manifest fast_manifest(std::uint64_t dice = 6) {
    shard::lot_manifest manifest;
    manifest.periods = 20;
    manifest.settle_periods = 4;
    manifest.distortion_periods = 40;
    manifest.calibration_periods = 256;
    manifest.dice = dice;
    manifest.first_seed = 11;
    manifest.threads = 1;
    manifest.batch_lanes = 4;
    return manifest;
}

std::vector<shard::unit_record> drain_blocking(unit_stream& stream) {
    std::vector<shard::unit_record> items;
    while (auto item = stream.next()) {
        items.push_back(std::move(*item));
    }
    return items;
}

TEST(UnitStream, DeliversTheRangeInGlobalUnitOrder) {
    const auto manifest = fast_manifest(6);
    unit_stream stream(manifest, /*first_unit=*/2, /*units=*/3);
    EXPECT_EQ(stream.total_units(), 3u);
    const auto items = drain_blocking(stream);
    ASSERT_EQ(items.size(), 3u);
    for (std::size_t i = 0; i < items.size(); ++i) {
        EXPECT_EQ(items[i].unit, 2u + i);
        EXPECT_EQ(items[i].record.type, store::record_type::screening_report);
    }
    EXPECT_TRUE(stream.finished());
    EXPECT_EQ(stream.delivered(), 3u);
    EXPECT_EQ(stream.error(), nullptr);
}

TEST(UnitStream, SliceOfSharedPoolMatchesPrivatePoolByteForByte) {
    const auto manifest = fast_manifest(8);

    // Reference: each range on its own private pool.
    unit_stream ref_a(manifest, 0, 4);
    unit_stream ref_b(manifest, 4, 4);
    const auto items_a = drain_blocking(ref_a);
    const auto items_b = drain_blocking(ref_b);

    // Same ranges multiplexed onto one shared pool (the daemon's shape),
    // with wakeup callbacks firing from worker threads.
    auto queue = std::make_shared<core::job_queue>(3, core::job_schedule::round_robin);
    std::atomic<int> wakes{0};
    unit_stream svc_a(manifest, 0, 4, queue, [&] { wakes.fetch_add(1); });
    unit_stream svc_b(manifest, 4, 4, queue, [&] { wakes.fetch_add(1); });
    const auto got_a = drain_blocking(svc_a);
    const auto got_b = drain_blocking(svc_b);

    ASSERT_EQ(got_a.size(), items_a.size());
    ASSERT_EQ(got_b.size(), items_b.size());
    for (std::size_t i = 0; i < got_a.size(); ++i) {
        EXPECT_EQ(got_a[i].unit, items_a[i].unit);
        EXPECT_EQ(got_a[i].record, items_a[i].record) << "unit " << got_a[i].unit;
    }
    for (std::size_t i = 0; i < got_b.size(); ++i) {
        EXPECT_EQ(got_b[i].record, items_b[i].record) << "unit " << got_b[i].unit;
    }
    // The notifier fires at least once per publication (group publishes
    // may coalesce several items into one wake), but runs on the worker
    // thread just AFTER the publication is pullable -- a blocking drain
    // can outrun the last callback, so give it a moment to land.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (wakes.load() < 2 && std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_GE(wakes.load(), 2);
}

TEST(UnitStream, TryNextDrainsWithoutBlocking) {
    const auto manifest = fast_manifest(5);
    unit_stream stream(manifest, 0, 5);
    std::vector<shard::unit_record> items;
    for (;;) {
        if (auto item = stream.try_next()) {
            items.push_back(std::move(*item));
            continue;
        }
        if (stream.finished()) {
            // Close the publish/terminal race with one more probe before
            // declaring the stream dry -- the event loop does the same.
            if (auto item = stream.try_next()) {
                items.push_back(std::move(*item));
                continue;
            }
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(items.size(), 5u);
    for (std::size_t i = 0; i < items.size(); ++i) {
        EXPECT_EQ(items[i].unit, i);
    }
}

TEST(UnitStream, DictionaryWorkloadStreamsAcquisitionRecords) {
    auto manifest = fast_manifest();
    manifest.workload = shard::workload_kind::dictionary;
    manifest.grid_points = 3;
    const std::uint64_t total = manifest.total_units();
    ASSERT_GT(total, 2u);
    // A mid-lot slice: the dictionary plan is built whole and sliced, so
    // unit indices stay global.
    unit_stream stream(manifest, 1, 2);
    const auto items = drain_blocking(stream);
    ASSERT_EQ(items.size(), 2u);
    EXPECT_EQ(items[0].unit, 1u);
    EXPECT_EQ(items[1].unit, 2u);
    EXPECT_EQ(items[0].record.type, store::record_type::acquisition_result);
}

TEST(UnitStream, CancelStopsDeliveryEarly) {
    // Large enough that the single worker cannot finish the whole lot
    // before the cancel lands (cancel after the first delivery).
    const auto manifest = fast_manifest(2000);
    unit_stream stream(manifest, 0, 2000);
    auto first = stream.next();
    ASSERT_TRUE(first.has_value());
    stream.cancel();
    std::uint64_t delivered = 1;
    while (stream.next()) {
        ++delivered;
    }
    EXPECT_LT(delivered, 2000u);
    EXPECT_TRUE(stream.finished());
    EXPECT_EQ(stream.error(), nullptr); // cancelled, not failed
}

TEST(UnitStream, EmptyRangeIsFinishedFromBirth) {
    const auto manifest = fast_manifest(4);
    unit_stream stream(manifest, 2, 0);
    EXPECT_TRUE(stream.finished());
    EXPECT_FALSE(stream.next().has_value());
    EXPECT_FALSE(stream.try_next().has_value());
    EXPECT_EQ(stream.total_units(), 0u);
}

} // namespace
