// Shard plan: contiguous, balanced, exhaustive -- the properties the
// merge's coverage check and the supervisor's retry bookkeeping lean on.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "shard/plan.hpp"

namespace {

using namespace bistna;

void expect_exhaustive(const std::vector<shard::shard_range>& plan,
                       std::uint64_t units) {
    std::uint64_t next = 0;
    for (std::size_t s = 0; s < plan.size(); ++s) {
        EXPECT_EQ(plan[s].index, s);
        EXPECT_EQ(plan[s].first, next) << "shard " << s << " is not contiguous";
        next += plan[s].units;
    }
    EXPECT_EQ(next, units) << "plan does not cover the lot exactly";
}

TEST(ShardPlan, EvenSplit) {
    const auto plan = shard::plan_shards(12, 4);
    ASSERT_EQ(plan.size(), 4u);
    for (const auto& range : plan) {
        EXPECT_EQ(range.units, 3u);
    }
    expect_exhaustive(plan, 12);
}

TEST(ShardPlan, RemainderGoesToTheFirstShards) {
    const auto plan = shard::plan_shards(10, 4);
    ASSERT_EQ(plan.size(), 4u);
    EXPECT_EQ(plan[0].units, 3u);
    EXPECT_EQ(plan[1].units, 3u);
    EXPECT_EQ(plan[2].units, 2u);
    EXPECT_EQ(plan[3].units, 2u);
    expect_exhaustive(plan, 10);
}

TEST(ShardPlan, MoreShardsThanUnitsYieldsEmptyTrailingShards) {
    const auto plan = shard::plan_shards(3, 7);
    ASSERT_EQ(plan.size(), 7u);
    for (std::size_t s = 0; s < 3; ++s) {
        EXPECT_EQ(plan[s].units, 1u);
    }
    for (std::size_t s = 3; s < 7; ++s) {
        EXPECT_EQ(plan[s].units, 0u);
    }
    expect_exhaustive(plan, 3);
}

TEST(ShardPlan, SingleShardTakesEverything) {
    const auto plan = shard::plan_shards(1000, 1);
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0].first, 0u);
    EXPECT_EQ(plan[0].units, 1000u);
}

TEST(ShardPlan, ZeroUnitsIsAllEmptyShards) {
    const auto plan = shard::plan_shards(0, 3);
    ASSERT_EQ(plan.size(), 3u);
    expect_exhaustive(plan, 0);
}

TEST(ShardPlan, ZeroShardsIsAPreconditionViolation) {
    EXPECT_THROW((void)shard::plan_shards(10, 0), precondition_error);
}

TEST(ShardPlan, BalanceNeverDiffersByMoreThanOne) {
    for (std::uint64_t units : {1u, 7u, 64u, 4097u}) {
        for (std::size_t shards : {1u, 2u, 3u, 7u, 16u}) {
            const auto plan = shard::plan_shards(units, shards);
            std::uint64_t lo = units, hi = 0;
            for (const auto& range : plan) {
                lo = std::min(lo, range.units);
                hi = std::max(hi, range.units);
            }
            EXPECT_LE(hi - lo, 1u) << units << " units over " << shards;
            expect_exhaustive(plan, units);
        }
    }
}

} // namespace
