// Telemetry snapshots as typed store records: the shard fleet's sidecar
// format.  Round trips go through real store files (framing, CRCs), and
// the decoder's bounds checks are exercised with deliberately mangled
// payloads.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "store/format.hpp"
#include "telemetry/snapshot.hpp"
#include "telemetry/snapshot_record.hpp"

namespace {

using namespace bistna;

telemetry::telemetry_snapshot full_snapshot() {
    telemetry::telemetry_snapshot snapshot;
    snapshot.process_name = "shard-3";
    snapshot.pid = 4711;
    snapshot.counters.push_back({"engine.stimulus.hits", 120});
    snapshot.counters.push_back({"store.frames", 0});
    telemetry::histogram_value hist;
    hist.name = "job_queue.task.run_ns";
    hist.count = 3;
    hist.sum = 1 + 700 + 70000;
    hist.buckets[telemetry::bucket_index(1)] += 1;
    hist.buckets[telemetry::bucket_index(700)] += 1;
    hist.buckets[telemetry::bucket_index(70000)] += 1;
    snapshot.histograms.push_back(hist);
    snapshot.threads.push_back({1, "shard-main", 0});
    snapshot.threads.push_back({2, "jq-worker-0", 17});
    snapshot.spans.push_back({"engine.render", 2, 1000, 500, {{"lanes", 4.0}}});
    snapshot.spans.push_back(
        {"shard.stream", 1, 900, 9000, {{"first", 6.0}, {"units", 3.0}}});
    return snapshot;
}

TEST(TelemetrySnapshotRecord, RecordRoundTripPreservesEverything) {
    const auto original = full_snapshot();
    const store::record r = telemetry::to_record(original);
    EXPECT_EQ(r.type, store::record_type::telemetry_snapshot);
    const auto decoded = telemetry::snapshot_from_record(r);
    EXPECT_EQ(decoded, original);
}

TEST(TelemetrySnapshotRecord, StoreFileRoundTripPreservesEverything) {
    const std::string path = "/tmp/bistna_telemetry_sidecar_test.store";
    std::filesystem::remove(path);
    const auto original = full_snapshot();
    telemetry::write_snapshot_store(path, original);

    const auto loaded = telemetry::read_snapshot_store(path);
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded[0], original);
    std::filesystem::remove(path);
}

TEST(TelemetrySnapshotRecord, EmptySnapshotRoundTrips) {
    const telemetry::telemetry_snapshot empty;
    EXPECT_EQ(telemetry::snapshot_from_record(telemetry::to_record(empty)),
              empty);
}

TEST(TelemetrySnapshotRecord, TruncatedPayloadThrowsSerializationError) {
    store::record r = telemetry::to_record(full_snapshot());
    r.payload.resize(r.payload.size() / 2);
    EXPECT_THROW(telemetry::snapshot_from_record(r), serialization_error);
}

TEST(TelemetrySnapshotRecord, ImplausibleListCountThrowsBeforeAllocating) {
    store::record r = telemetry::to_record(telemetry::telemetry_snapshot{});
    // The first u32 after pid + process_name is the counter count; forge it
    // to claim ~4 billion entries in a near-empty payload.
    ASSERT_GE(r.payload.size(), 8u + 4 + 4);
    const std::size_t count_offset = 8 + 4; // u64 pid, u32 empty-string len
    r.payload[count_offset + 0] = 0xFF;
    r.payload[count_offset + 1] = 0xFF;
    r.payload[count_offset + 2] = 0xFF;
    r.payload[count_offset + 3] = 0xFF;
    EXPECT_THROW(telemetry::snapshot_from_record(r), serialization_error);
}

TEST(TelemetrySnapshotRecord, MergeMetricsSumsCountersAndHistograms) {
    telemetry::telemetry_snapshot a;
    a.process_name = "shard-0";
    a.counters.push_back({"items", 10});
    a.counters.push_back({"only_a", 1});
    telemetry::histogram_value ha;
    ha.name = "latency";
    ha.count = 2;
    ha.sum = 5;
    ha.buckets[1] = 1;
    ha.buckets[2] = 1;
    a.histograms.push_back(ha);

    telemetry::telemetry_snapshot b;
    b.process_name = "shard-1";
    b.counters.push_back({"items", 32});
    b.counters.push_back({"only_b", 2});
    telemetry::histogram_value hb;
    hb.name = "latency";
    hb.count = 1;
    hb.sum = 100;
    hb.buckets[7] = 1;
    b.histograms.push_back(hb);

    const std::vector<telemetry::telemetry_snapshot> fleet = {a, b};
    const auto merged = telemetry::merge_metrics(fleet);
    EXPECT_EQ(merged.counter("items"), 42u);
    EXPECT_EQ(merged.counter("only_a"), 1u);
    EXPECT_EQ(merged.counter("only_b"), 2u);
    const auto* hist = merged.find_histogram("latency");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->count, 3u);
    EXPECT_EQ(hist->sum, 105u);
    EXPECT_EQ(hist->buckets[1], 1u);
    EXPECT_EQ(hist->buckets[2], 1u);
    EXPECT_EQ(hist->buckets[7], 1u);
    // Per-process data does not merge; the trace is the cross-process view.
    EXPECT_TRUE(merged.spans.empty());
    EXPECT_TRUE(merged.threads.empty());
}

TEST(TelemetrySnapshotRecord, WrongRecordTypeThrows) {
    store::record r = telemetry::to_record(telemetry::telemetry_snapshot{});
    r.type = store::record_type::screening_report;
    EXPECT_THROW(telemetry::snapshot_from_record(r), serialization_error);
}

} // namespace
