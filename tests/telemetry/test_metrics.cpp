// Metric registry: per-thread sharded counters and log-2 histograms.
// The suite hammers the hot path from many threads (the TSan CI build is
// the real assertion there), pins down the exact bucket geometry, and
// verifies the whole detached/attached lifecycle -- including that a
// detached registry records exactly nothing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/snapshot.hpp"

namespace {

using namespace bistna;

TEST(TelemetryMetrics, InterningIsStableAndNamesRoundTrip) {
    const auto a = telemetry::counter_id("test.metrics.alpha");
    const auto b = telemetry::counter_id("test.metrics.beta");
    EXPECT_NE(a, b);
    EXPECT_EQ(a, telemetry::counter_id("test.metrics.alpha"));
    EXPECT_EQ(telemetry::counter_name(a), "test.metrics.alpha");

    const auto h = telemetry::histogram_id("test.metrics.hist");
    EXPECT_EQ(h, telemetry::histogram_id("test.metrics.hist"));
    EXPECT_EQ(telemetry::histogram_name(h), "test.metrics.hist");
}

TEST(TelemetryMetrics, DetachedRecordingIsANoOp) {
    ASSERT_FALSE(telemetry::attached());
    const auto counter = telemetry::counter_id("test.noop.counter");
    const auto histogram = telemetry::histogram_id("test.noop.hist");
    telemetry::counter_add(counter, 7);
    telemetry::histogram_record(histogram, 1234);
    telemetry::emit_span("test.noop.span", 1, 2);

    // A registry attached only afterwards must not see any of it.
    telemetry::metric_registry registry;
    {
        telemetry::registry_scope scope(registry);
    }
    const auto snapshot = registry.snapshot();
    EXPECT_EQ(snapshot.counter("test.noop.counter"), 0u);
    const auto* hist = snapshot.find_histogram("test.noop.hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->count, 0u);
    EXPECT_TRUE(snapshot.spans.empty());
}

TEST(TelemetryMetrics, ConcurrentHammeringAggregatesExactly) {
    constexpr std::size_t kThreads = 8;
    constexpr std::uint64_t kPerThread = 20000;
    const auto counter = telemetry::counter_id("test.hammer.counter");
    const auto histogram = telemetry::histogram_id("test.hammer.hist");

    telemetry::metric_registry registry;
    registry.attach();

    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                telemetry::counter_add(counter);
                telemetry::histogram_record(histogram, t + 1);
            }
        });
    }
    for (auto& w : workers) {
        w.join();
    }
    registry.detach();

    const auto snapshot = registry.snapshot();
    EXPECT_EQ(snapshot.counter("test.hammer.counter"), kThreads * kPerThread);
    const auto* hist = snapshot.find_histogram("test.hammer.hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->count, kThreads * kPerThread);
    // Exact sum: each thread t contributed kPerThread samples of value t+1.
    std::uint64_t expected_sum = 0;
    for (std::size_t t = 0; t < kThreads; ++t) {
        expected_sum += (t + 1) * kPerThread;
    }
    EXPECT_EQ(hist->sum, expected_sum);
    // Every recording thread got its own shard row.
    EXPECT_GE(snapshot.threads.size(), kThreads);
}

TEST(TelemetryMetrics, SnapshotIsReadableWhileAttachedAndRecording) {
    const auto counter = telemetry::counter_id("test.live.counter");
    telemetry::metric_registry registry;
    telemetry::registry_scope scope(registry);

    std::atomic<bool> stop{false};
    std::thread writer([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            telemetry::counter_add(counter);
        }
    });
    std::uint64_t last = 0;
    for (int i = 0; i < 50; ++i) {
        const std::uint64_t now = registry.snapshot().counter("test.live.counter");
        EXPECT_GE(now, last); // monotone under concurrent writes
        last = now;
    }
    stop.store(true, std::memory_order_relaxed);
    writer.join();
}

TEST(TelemetryMetrics, HistogramBucketBoundariesAreExact) {
    // The geometry: bucket 0 = {0}, bucket k >= 1 = [2^(k-1), 2^k - 1].
    EXPECT_EQ(telemetry::bucket_index(0), 0u);
    EXPECT_EQ(telemetry::bucket_index(1), 1u);
    EXPECT_EQ(telemetry::bucket_index(2), 2u);
    EXPECT_EQ(telemetry::bucket_index(3), 2u);
    EXPECT_EQ(telemetry::bucket_index(4), 3u);
    EXPECT_EQ(telemetry::bucket_index(std::numeric_limits<std::uint64_t>::max()),
              64u);
    for (std::size_t bucket = 0; bucket < telemetry::histogram_buckets; ++bucket) {
        // Both edges of every bucket map back into that bucket.
        EXPECT_EQ(telemetry::bucket_index(telemetry::bucket_lower_bound(bucket)),
                  bucket);
        EXPECT_EQ(telemetry::bucket_index(telemetry::bucket_upper_bound(bucket)),
                  bucket);
        if (bucket > 0) {
            // And the value one below the lower edge does not.
            EXPECT_EQ(
                telemetry::bucket_index(telemetry::bucket_lower_bound(bucket) - 1),
                bucket - 1);
        }
    }

    const auto histogram = telemetry::histogram_id("test.buckets.hist");
    telemetry::metric_registry registry;
    {
        telemetry::registry_scope scope(registry);
        telemetry::histogram_record(histogram, 0);    // bucket 0
        telemetry::histogram_record(histogram, 1);    // bucket 1
        telemetry::histogram_record(histogram, 2);    // bucket 2
        telemetry::histogram_record(histogram, 3);    // bucket 2
        telemetry::histogram_record(histogram, 4);    // bucket 3
        telemetry::histogram_record(histogram, 1023); // bucket 10
        telemetry::histogram_record(histogram, 1024); // bucket 11
    }
    // The snapshot must outlive the pointer find_histogram returns into it.
    const auto snap = registry.snapshot();
    const auto* hist = snap.find_histogram("test.buckets.hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->count, 7u);
    EXPECT_EQ(hist->sum, 0u + 1 + 2 + 3 + 4 + 1023 + 1024);
    EXPECT_EQ(hist->buckets[0], 1u);
    EXPECT_EQ(hist->buckets[1], 1u);
    EXPECT_EQ(hist->buckets[2], 2u);
    EXPECT_EQ(hist->buckets[3], 1u);
    EXPECT_EQ(hist->buckets[10], 1u);
    EXPECT_EQ(hist->buckets[11], 1u);
    // Quantiles are bucket-resolution upper bounds.
    EXPECT_EQ(hist->quantile_upper_bound(0.0), 0u);
    EXPECT_EQ(hist->quantile_upper_bound(1.0), 2047u);
}

TEST(TelemetryMetrics, ReattachRoutesToTheNewRegistryOnly) {
    const auto counter = telemetry::counter_id("test.reattach.counter");

    telemetry::metric_registry first;
    first.attach();
    telemetry::counter_add(counter, 5);
    first.detach();

    telemetry::metric_registry second;
    second.attach();
    telemetry::counter_add(counter, 11);
    second.detach();

    EXPECT_EQ(first.snapshot().counter("test.reattach.counter"), 5u);
    EXPECT_EQ(second.snapshot().counter("test.reattach.counter"), 11u);
}

TEST(TelemetryMetrics, DoubleAttachThrows) {
    telemetry::metric_registry first;
    telemetry::metric_registry second;
    telemetry::registry_scope scope(first);
    EXPECT_THROW(second.attach(), precondition_error);
    EXPECT_THROW(first.attach(), precondition_error);
}

TEST(TelemetryMetrics, CounterCellReadsLocallyAndFeedsTheRegistry) {
    telemetry::counter_cell cell("test.cell.counter");
    cell.add(3);
    EXPECT_EQ(cell.value(), 3u); // readable with no registry at all

    telemetry::metric_registry registry;
    {
        telemetry::registry_scope scope(registry);
        cell.add(4);
    }
    EXPECT_EQ(cell.value(), 7u);
    // The registry saw only the increments made while attached.
    EXPECT_EQ(registry.snapshot().counter("test.cell.counter"), 4u);

    cell.reset();
    EXPECT_EQ(cell.value(), 0u);
}

TEST(TelemetryMetrics, ThreadNamesAppearInSnapshots) {
    telemetry::metric_registry registry;
    telemetry::registry_scope scope(registry);
    std::thread worker([] {
        telemetry::set_thread_name("metrics-test-worker");
        telemetry::counter_add(telemetry::counter_id("test.names.counter"));
    });
    worker.join();
    const auto snapshot = registry.snapshot();
    bool found = false;
    for (const auto& thread : snapshot.threads) {
        found = found || thread.name == "metrics-test-worker";
    }
    EXPECT_TRUE(found);
}

} // namespace
