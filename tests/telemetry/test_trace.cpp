// Trace spans and the Chrome trace_event export.  The JSON round-trip
// tests parse the exported document with the repo's own strict parser, so
// a malformed escape, locale-dependent double, or missing metadata event
// fails here long before chrome://tracing would shrug at it.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/snapshot.hpp"
#include "telemetry/span.hpp"
#include "telemetry/trace_export.hpp"

namespace {

using namespace bistna;

TEST(TelemetryTraceSpan, RecordsIntervalAndArgsWhileAttached) {
    telemetry::metric_registry registry;
    {
        telemetry::registry_scope scope(registry);
        telemetry::set_thread_name("trace-test-main");
        telemetry::trace_span span("test.span.outer");
        EXPECT_TRUE(span.armed());
        span.arg("lanes", 4.0);
        span.arg("dice", 48.0);
    }
    const auto snapshot = registry.snapshot();
    ASSERT_EQ(snapshot.spans.size(), 1u);
    const auto& span = snapshot.spans[0];
    EXPECT_EQ(span.name, "test.span.outer");
    EXPECT_GT(span.start_ns, 0u);
    ASSERT_EQ(span.args.size(), 2u);
    EXPECT_EQ(span.args[0].first, "lanes");
    EXPECT_EQ(span.args[0].second, 4.0);
    EXPECT_EQ(span.args[1].first, "dice");
    EXPECT_EQ(span.args[1].second, 48.0);
    ASSERT_FALSE(snapshot.threads.empty());
    EXPECT_EQ(span.tid, snapshot.threads[0].tid);
}

TEST(TelemetryTraceSpan, DetachedSpanIsUnarmedAndRecordsNothing) {
    ASSERT_FALSE(telemetry::attached());
    {
        telemetry::trace_span span("test.span.detached");
        EXPECT_FALSE(span.armed());
        span.arg("ignored", 1.0);
    }
    telemetry::metric_registry registry;
    {
        telemetry::registry_scope scope(registry);
    }
    EXPECT_TRUE(registry.snapshot().spans.empty());
}

TEST(TelemetryTraceSpan, RingOverflowCountsDroppedInsteadOfWrapping) {
    telemetry::registry_options options;
    options.span_ring_capacity = 4;
    telemetry::metric_registry registry(options);
    {
        telemetry::registry_scope scope(registry);
        for (int i = 0; i < 10; ++i) {
            telemetry::trace_span span("test.span.flood");
        }
    }
    const auto snapshot = registry.snapshot();
    EXPECT_EQ(snapshot.spans.size(), 4u); // the first four, not the last four
    ASSERT_EQ(snapshot.threads.size(), 1u);
    EXPECT_EQ(snapshot.threads[0].dropped_spans, 6u);
}

/// A synthetic two-process fleet with known timestamps.
std::vector<telemetry::telemetry_snapshot> two_process_fixture() {
    telemetry::telemetry_snapshot coordinator;
    coordinator.process_name = "coordinator";
    coordinator.pid = 100;
    coordinator.threads.push_back({1, "coordinator-main", 0});
    coordinator.spans.push_back(
        {"shard.attempt", 1, 2'000'000, 5'000'000, {{"shard", 0.0}}});

    telemetry::telemetry_snapshot worker;
    worker.process_name = "shard-0";
    worker.pid = 200;
    worker.threads.push_back({1, "shard-main", 0});
    worker.spans.push_back({"engine.render",
                            1,
                            3'000'000,
                            1'000'000,
                            {{"lanes", 4.0}, {"k", 0.5}}});
    return {coordinator, worker};
}

TEST(TraceExport, ChromeTraceRoundTripsThroughStrictJson) {
    const auto fleet = two_process_fixture();
    const std::string text = telemetry::chrome_trace_json(fleet);
    const json_value root = parse_json(text, "trace JSON");

    ASSERT_EQ(root.type, json_value::kind::object);
    const json_value* events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->type, json_value::kind::array);

    std::vector<std::string> process_names;
    std::vector<std::string> thread_names;
    std::size_t complete_events = 0;
    for (const auto& event : events->elements) {
        const json_value* ph = event.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->str == "M") {
            const json_value* name = event.find("name");
            const json_value* args = event.find("args");
            ASSERT_NE(name, nullptr);
            ASSERT_NE(args, nullptr);
            const json_value* value = args->find("name");
            ASSERT_NE(value, nullptr);
            (name->str == "process_name" ? process_names : thread_names)
                .push_back(value->str);
        } else if (ph->str == "X") {
            ++complete_events;
            ASSERT_NE(event.find("name"), nullptr);
            ASSERT_NE(event.find("pid"), nullptr);
            ASSERT_NE(event.find("tid"), nullptr);
            ASSERT_NE(event.find("ts"), nullptr);
            ASSERT_NE(event.find("dur"), nullptr);
        }
    }
    EXPECT_EQ(process_names, (std::vector<std::string>{"coordinator", "shard-0"}));
    EXPECT_EQ(thread_names,
              (std::vector<std::string>{"coordinator-main", "shard-main"}));
    EXPECT_EQ(complete_events, 2u);
}

TEST(TraceExport, TimestampsRebaseToEarliestSpanAndConvertToMicroseconds) {
    const auto fleet = two_process_fixture();
    const json_value root =
        parse_json(telemetry::chrome_trace_json(fleet), "trace JSON");
    const json_value* events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);

    double coordinator_ts = -1.0;
    double worker_ts = -1.0;
    double worker_dur = -1.0;
    double worker_lanes = -1.0;
    for (const auto& event : events->elements) {
        if (event.find("ph")->str != "X") {
            continue;
        }
        if (event.find("name")->str == "shard.attempt") {
            coordinator_ts = event.find("ts")->num;
        } else {
            worker_ts = event.find("ts")->num;
            worker_dur = event.find("dur")->num;
            const json_value* args = event.find("args");
            ASSERT_NE(args, nullptr);
            worker_lanes = args->find("lanes")->num;
        }
    }
    // Earliest span (coordinator, 2 ms) rebases to 0; the worker span
    // started 1 ms later and ran 1 ms, all in microseconds.
    EXPECT_EQ(coordinator_ts, 0.0);
    EXPECT_EQ(worker_ts, 1000.0);
    EXPECT_EQ(worker_dur, 1000.0);
    EXPECT_EQ(worker_lanes, 4.0);
}

TEST(TraceExport, EscapesProcessAndSpanStringsSafely) {
    telemetry::telemetry_snapshot snapshot;
    snapshot.process_name = "evil \"proc\"\n\t\\";
    snapshot.pid = 1;
    snapshot.threads.push_back({1, "thread \"one\"", 0});
    snapshot.spans.push_back({"span", 1, 10, 5, {}});
    const std::string text = telemetry::chrome_trace_json({&snapshot, 1});
    const json_value root = parse_json(text, "trace JSON");
    const json_value* events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    const json_value* args = events->elements.front().find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->find("name")->str, "evil \"proc\"\n\t\\");
}

} // namespace
