// Interval arithmetic: the error-bound propagation engine of eqs. (3)-(5).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/interval.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"

namespace {

using namespace bistna;

TEST(Interval, ConstructionAndAccessors) {
    const interval iv(-1.0, 3.0);
    EXPECT_DOUBLE_EQ(iv.lo(), -1.0);
    EXPECT_DOUBLE_EQ(iv.hi(), 3.0);
    EXPECT_DOUBLE_EQ(iv.width(), 4.0);
    EXPECT_DOUBLE_EQ(iv.midpoint(), 1.0);
    EXPECT_DOUBLE_EQ(iv.radius(), 2.0);
    EXPECT_TRUE(iv.contains(0.0));
    EXPECT_FALSE(iv.contains(3.5));
    EXPECT_THROW(interval(1.0, 0.0), precondition_error);
}

TEST(Interval, FactoryHelpers) {
    EXPECT_EQ(interval::from_unordered(5.0, 2.0), interval(2.0, 5.0));
    EXPECT_EQ(interval::centered(1.0, 0.5), interval(0.5, 1.5));
    EXPECT_THROW(interval::centered(0.0, -1.0), precondition_error);
}

TEST(Interval, ArithmeticContainment) {
    // Property: for random a in A, b in B, a op b must lie in A op B.
    rng generator(99);
    for (int trial = 0; trial < 500; ++trial) {
        const interval a = interval::from_unordered(generator.uniform(-5, 5),
                                                    generator.uniform(-5, 5));
        const interval b = interval::from_unordered(generator.uniform(-5, 5),
                                                    generator.uniform(-5, 5));
        const double x = generator.uniform(a.lo(), a.hi());
        const double y = generator.uniform(b.lo(), b.hi());
        EXPECT_TRUE((a + b).contains(x + y));
        EXPECT_TRUE((a - b).contains(x - y));
        EXPECT_TRUE((a * b).contains(x * y));
        if (!b.contains_zero()) {
            EXPECT_TRUE((a / b).contains(x / y));
        }
    }
}

TEST(Interval, DivisionByZeroIntervalThrows) {
    EXPECT_THROW(interval(1.0, 2.0) / interval(-1.0, 1.0), configuration_error);
}

TEST(Interval, ScalarOperations) {
    const interval iv(1.0, 2.0);
    EXPECT_EQ(iv * -2.0, interval(-4.0, -2.0));
    EXPECT_EQ(iv + 1.0, interval(2.0, 3.0));
    EXPECT_EQ(-iv, interval(-2.0, -1.0));
    EXPECT_THROW(iv / 0.0, precondition_error);
}

TEST(Interval, SquareHandlesSignStraddle) {
    EXPECT_EQ(square(interval(-2.0, 1.0)), interval(0.0, 4.0));
    EXPECT_EQ(square(interval(1.0, 3.0)), interval(1.0, 9.0));
    EXPECT_EQ(square(interval(-3.0, -1.0)), interval(1.0, 9.0));
}

TEST(Interval, HypotIsEq4MinMax) {
    // The eq. (4) box: I1 = 100 +/- 4, I2 = -50 +/- 4.
    const interval i1 = interval::centered(100.0, 4.0);
    const interval i2 = interval::centered(-50.0, 4.0);
    const interval h = hypot(i1, i2);
    // Extremes at the corners with max/min |I1|, |I2|.
    EXPECT_NEAR(h.lo(), std::hypot(96.0, 46.0), 1e-12);
    EXPECT_NEAR(h.hi(), std::hypot(104.0, 54.0), 1e-12);
    // Containment property for random points in the box.
    rng generator(3);
    for (int t = 0; t < 200; ++t) {
        const double a = generator.uniform(i1.lo(), i1.hi());
        const double b = generator.uniform(i2.lo(), i2.hi());
        EXPECT_TRUE(h.contains(std::hypot(a, b)));
    }
}

TEST(Interval, HypotStraddlingZero) {
    const interval h = hypot(interval(-3.0, 3.0), interval(-4.0, 2.0));
    EXPECT_DOUBLE_EQ(h.lo(), 0.0);
    EXPECT_DOUBLE_EQ(h.hi(), 5.0);
}

TEST(Interval, Atan2BoxContainsCornerPhases) {
    const interval s(0.5, 1.0);
    const interval c(0.5, 1.0);
    const interval phase = atan2_box(s, c);
    EXPECT_TRUE(phase.contains(std::atan2(0.75, 0.75)));
    EXPECT_TRUE(phase.contains(std::atan2(0.5, 1.0)));
    EXPECT_TRUE(phase.contains(std::atan2(1.0, 0.5)));
}

TEST(Interval, Atan2BoxNearSeamStaysNarrow) {
    // Box near the -pi/+pi seam must not blow up to the whole circle.
    const interval s(-0.1, 0.1);
    const interval c(-1.0, -0.9);
    const interval phase = atan2_box(s, c);
    EXPECT_LT(phase.width(), 0.3);
}

TEST(Interval, Atan2BoxOriginThrows) {
    EXPECT_THROW(atan2_box(interval(-1.0, 1.0), interval(-1.0, 1.0)), configuration_error);
}

TEST(Interval, HullAndIntersect) {
    EXPECT_EQ(hull(interval(0.0, 1.0), interval(2.0, 3.0)), interval(0.0, 3.0));
    EXPECT_EQ(intersect(interval(0.0, 2.0), interval(1.0, 3.0)), interval(1.0, 2.0));
    EXPECT_THROW(intersect(interval(0.0, 1.0), interval(2.0, 3.0)), configuration_error);
}

TEST(Interval, SqrtMonotone) {
    EXPECT_EQ(sqrt(interval(4.0, 9.0)), interval(2.0, 3.0));
    EXPECT_THROW(sqrt(interval(-1.0, 1.0)), precondition_error);
}

} // namespace
