// Arena semantics the sweep workers rely on: geometric growth under
// exhaustion, reset() reusing the exact same capacity (same addresses for
// the same allocation sequence), and stable addresses across growth.
#include "common/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace {

using bistna::arena;

TEST(Arena, AllocationsAreCacheLineAlignedAndAccounted) {
    arena scratch(1024);
    const auto a = scratch.allocate<double>(10);
    const auto b = scratch.allocate<std::uint8_t>(3);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data()) % arena::alignment, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % arena::alignment, 0u);
    EXPECT_GE(scratch.used_bytes(), 10 * sizeof(double) + 3);
    EXPECT_GE(scratch.capacity_bytes(), scratch.used_bytes());
}

TEST(Arena, ExhaustionGrowsWithoutInvalidatingPriorAllocations) {
    arena scratch(256);
    // Fill the first block, then force repeated growth; earlier spans must
    // stay dereferenceable with their contents intact.
    std::vector<std::span<double>> spans;
    for (int i = 0; i < 8; ++i) {
        auto span = scratch.allocate<double>(64); // 512 B each > initial block
        for (std::size_t j = 0; j < span.size(); ++j) {
            span[j] = static_cast<double>(i * 1000 + static_cast<int>(j));
        }
        spans.push_back(span);
    }
    EXPECT_GT(scratch.blocks(), 1u);
    for (int i = 0; i < 8; ++i) {
        for (std::size_t j = 0; j < spans[i].size(); ++j) {
            EXPECT_EQ(spans[i][j], static_cast<double>(i * 1000 + static_cast<int>(j)));
        }
    }
    // Growth is geometric: a request far beyond current capacity lands in
    // one new block, not a long chain.
    const std::size_t blocks_before = scratch.blocks();
    (void)scratch.allocate<double>(1 << 16);
    EXPECT_EQ(scratch.blocks(), blocks_before + 1);
}

TEST(Arena, ResetKeepsCapacityAndReplaysTheSameAddresses) {
    arena scratch(512);
    std::vector<double*> first_pass;
    for (int i = 0; i < 6; ++i) {
        first_pass.push_back(scratch.allocate<double>(100).data());
    }
    const std::size_t capacity = scratch.capacity_bytes();
    const std::size_t blocks = scratch.blocks();
    EXPECT_GT(capacity, 0u);

    scratch.reset();
    EXPECT_EQ(scratch.used_bytes(), 0u);
    EXPECT_EQ(scratch.capacity_bytes(), capacity);
    EXPECT_EQ(scratch.blocks(), blocks);

    // The same allocation sequence after reset() reuses the same blocks
    // front to back -- the steady-state worker loop never touches the heap.
    for (int i = 0; i < 6; ++i) {
        EXPECT_EQ(scratch.allocate<double>(100).data(), first_pass[i]) << "alloc " << i;
    }
    EXPECT_EQ(scratch.capacity_bytes(), capacity);
    EXPECT_EQ(scratch.blocks(), blocks);
}

TEST(Arena, HighWaterTracksPeakAcrossResets) {
    arena scratch(128);
    (void)scratch.allocate<double>(200);
    const std::size_t peak = scratch.high_water_bytes();
    EXPECT_GE(peak, 200 * sizeof(double));
    scratch.reset();
    (void)scratch.allocate<double>(10);
    EXPECT_EQ(scratch.high_water_bytes(), peak);
}

TEST(Arena, ShrinkReleasesEverything) {
    arena scratch(128);
    (void)scratch.allocate<double>(1000);
    scratch.shrink();
    EXPECT_EQ(scratch.capacity_bytes(), 0u);
    EXPECT_EQ(scratch.used_bytes(), 0u);
    EXPECT_EQ(scratch.blocks(), 0u);
    // Still usable after a shrink.
    auto span = scratch.allocate<double>(32);
    EXPECT_EQ(span.size(), 32u);
}

TEST(Arena, ZeroedAllocationIsZero) {
    arena scratch;
    (void)scratch.allocate<double>(64); // dirty the block
    scratch.reset();
    const auto zeroed = scratch.allocate_zeroed(64);
    for (double v : zeroed) {
        EXPECT_EQ(v, 0.0);
    }
}

} // namespace
