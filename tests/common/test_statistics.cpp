#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/statistics.hpp"

namespace {

using namespace bistna;

TEST(RunningStats, MeanVarianceMinMax) {
    running_stats stats;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        stats.add(x);
    }
    EXPECT_EQ(stats.count(), 8u);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    EXPECT_NEAR(stats.variance(), 4.571428571, 1e-9); // unbiased
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
    EXPECT_DOUBLE_EQ(stats.range(), 7.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
    running_stats stats;
    stats.add(3.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
    EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(Percentile, InterpolatesLinearly) {
    std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.5);
    EXPECT_THROW((void)percentile({}, 0.5), precondition_error);
    EXPECT_THROW((void)percentile(v, 1.5), precondition_error);
}

TEST(Summarize, FullSummary) {
    std::vector<double> v;
    for (int i = 1; i <= 100; ++i) {
        v.push_back(static_cast<double>(i));
    }
    const auto s = summarize(v);
    EXPECT_EQ(s.count, 100u);
    EXPECT_DOUBLE_EQ(s.mean, 50.5);
    EXPECT_DOUBLE_EQ(s.median, 50.5);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 100.0);
    EXPECT_NEAR(s.p05, 5.95, 1e-9);
    EXPECT_NEAR(s.p95, 95.05, 1e-9);
    EXPECT_THROW((void)summarize({}), precondition_error);
}

TEST(Rms, KnownValues) {
    EXPECT_DOUBLE_EQ(rms({3.0, 4.0, 3.0, 4.0}), std::sqrt(12.5));
    EXPECT_DOUBLE_EQ(rms({}), 0.0);
}

TEST(PeakAbs, KnownValues) {
    EXPECT_DOUBLE_EQ(peak_abs({-3.0, 2.0, 1.0}), 3.0);
    EXPECT_DOUBLE_EQ(peak_abs({}), 0.0);
}

} // namespace
