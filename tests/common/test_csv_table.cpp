#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/table.hpp"

namespace {

using namespace bistna;

std::string read_file(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

TEST(Csv, WritesHeaderAndRows) {
    const std::string path = "/tmp/bistna_test_csv.csv";
    {
        csv_writer writer(path);
        writer.header({"f_hz", "gain_db"});
        writer.row({1000.0, -3.01});
        writer.row({2000.0, -12.3});
    }
    const std::string content = read_file(path);
    EXPECT_NE(content.find("f_hz,gain_db"), std::string::npos);
    EXPECT_NE(content.find("1000"), std::string::npos);
    EXPECT_NE(content.find("-12.3"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Csv, EscapesSpecialCells) {
    EXPECT_EQ(csv_escape("plain"), "plain");
    EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
    EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, UnwritablePathThrows) {
    EXPECT_THROW(csv_writer("/nonexistent_dir_xyz/file.csv"), configuration_error);
}

TEST(AsciiTable, AlignsColumnsAndCountsRows) {
    ascii_table table({"experiment", "paper", "measured"});
    table.add_row({"SFDR (dB)", "70", "69.8"});
    table.add_row(std::vector<double>{1.0, 2.0, 3.0});
    EXPECT_EQ(table.rows(), 2u);
    EXPECT_EQ(table.columns(), 3u);

    std::ostringstream os;
    table.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("experiment"), std::string::npos);
    EXPECT_NE(text.find("SFDR (dB)"), std::string::npos);
    EXPECT_NE(text.find("|---"), std::string::npos);
}

TEST(AsciiTable, RowWidthMismatchThrows) {
    ascii_table table({"a", "b"});
    EXPECT_THROW(table.add_row({"only-one"}), precondition_error);
}

TEST(Format, FixedAndScientific) {
    EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
    EXPECT_EQ(format_fixed(-1.0, 1), "-1.0");
    EXPECT_NE(format_sci(12345.678).find('e'), std::string::npos);
}

} // namespace
