// The "--name=value" flag helpers behind every example/daemon front end:
// defaulted string flags (--listen/--connect) and strict unsigned parsing,
// where a malformed value must throw naming the flag rather than silently
// reading as 0 or falling back to the default.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/error.hpp"

namespace {

using namespace bistna;

/// Builds a stable argv from string literals for one test.
class argv_fixture {
public:
    explicit argv_fixture(std::vector<std::string> args) : storage_(std::move(args)) {
        pointers_.push_back(const_cast<char*>("test"));
        for (auto& s : storage_) {
            pointers_.push_back(s.data());
        }
    }

    int argc() const { return static_cast<int>(pointers_.size()); }
    char** argv() { return pointers_.data(); }

private:
    std::vector<std::string> storage_;
    std::vector<char*> pointers_;
};

TEST(Cli, FlagStringReturnsValueWhenPresent) {
    argv_fixture args({"--listen=/run/bistna.sock", "--other=x"});
    EXPECT_EQ(flag_string(args.argc(), args.argv(), "listen", "/tmp/default.sock"),
              "/run/bistna.sock");
}

TEST(Cli, FlagStringFallsBackWhenAbsent) {
    argv_fixture args({"--other=x"});
    EXPECT_EQ(flag_string(args.argc(), args.argv(), "listen", "/tmp/default.sock"),
              "/tmp/default.sock");
}

TEST(Cli, FlagStringRejectsExplicitEmptyValue) {
    // "--listen=" is a typo, not a request for the default: silently
    // substituting the fallback would hide it.
    argv_fixture args({"--listen="});
    EXPECT_THROW(flag_string(args.argc(), args.argv(), "listen", "/tmp/default.sock"),
                 configuration_error);
}

TEST(Cli, FlagStringValueMayContainEqualsSigns) {
    argv_fixture args({"--connect=tcp:9042"});
    EXPECT_EQ(flag_string(args.argc(), args.argv(), "connect", ""), "tcp:9042");
}

TEST(Cli, FlagU64ParsesAndDefaults) {
    argv_fixture args({"--quota=12"});
    EXPECT_EQ(flag_u64(args.argc(), args.argv(), "quota", 2), 12u);
    EXPECT_EQ(flag_u64(args.argc(), args.argv(), "absent", 7), 7u);
    argv_fixture zero({"--quota=0"});
    EXPECT_EQ(flag_u64(zero.argc(), zero.argv(), "quota", 2), 0u);
}

TEST(Cli, FlagU64RejectsMalformedValues) {
    for (const char* bad : {"--n=", "--n=8x", "--n=-1", "--n=0.5", "--n= 8",
                            "--n=99999999999999999999999"}) {
        argv_fixture args({bad});
        EXPECT_THROW(flag_u64(args.argc(), args.argv(), "n", 1), configuration_error)
            << bad;
    }
}

TEST(Cli, FlagU64ErrorNamesTheFlag) {
    argv_fixture args({"--stall-timeout-ms=fast"});
    try {
        flag_u64(args.argc(), args.argv(), "stall-timeout-ms", 0);
        FAIL() << "expected configuration_error";
    } catch (const configuration_error& e) {
        EXPECT_NE(std::string(e.what()).find("stall-timeout-ms"), std::string::npos);
    }
}

TEST(Cli, FlagU64AcceptsUint64Max) {
    argv_fixture args({"--n=18446744073709551615"});
    EXPECT_EQ(flag_u64(args.argc(), args.argv(), "n", 0), UINT64_MAX);
}

} // namespace
