#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/math_util.hpp"
#include "common/units.hpp"

namespace {

using namespace bistna;

TEST(Units, FrequencyArithmetic) {
    const hertz master = megahertz(6.0);
    EXPECT_DOUBLE_EQ((master / 6.0).value, 1e6);
    EXPECT_DOUBLE_EQ(master / kilohertz(62.5), 96.0);
    EXPECT_DOUBLE_EQ((2.0 * kilohertz(1.0)).value, 2000.0);
    EXPECT_DOUBLE_EQ(period_of(kilohertz(1.0)).value, 1e-3);
}

TEST(Units, VoltageArithmetic) {
    const volt va_plus = millivolt(75.0);
    const volt va_minus = millivolt(-75.0);
    EXPECT_DOUBLE_EQ((va_plus - va_minus).value, 0.15);
    EXPECT_DOUBLE_EQ((2.0 * va_plus).value, 0.15);
    EXPECT_TRUE(va_plus > va_minus);
}

TEST(Decibels, AmplitudeConversionsRoundTrip) {
    EXPECT_DOUBLE_EQ(amplitude_ratio_to_db(10.0), 20.0);
    EXPECT_DOUBLE_EQ(amplitude_ratio_to_db(0.1), -20.0);
    EXPECT_NEAR(db_to_amplitude_ratio(-6.0), 0.5012, 1e-4);
    for (double db : {-70.0, -3.0, 0.0, 12.0}) {
        EXPECT_NEAR(amplitude_ratio_to_db(db_to_amplitude_ratio(db)), db, 1e-12);
    }
    EXPECT_EQ(amplitude_ratio_to_db(0.0), -std::numeric_limits<double>::infinity());
}

TEST(Decibels, Fig9FullScaleReference) {
    // The paper's Fig. 9 y-axis: A1 = 0.2 V reads ~ -10.9 dB re 0.7 V FS.
    EXPECT_NEAR(amplitude_to_dbfs(0.2, 0.7), -10.88, 0.01);
    EXPECT_NEAR(amplitude_to_dbfs(0.02, 0.7), -30.88, 0.01);
    EXPECT_NEAR(amplitude_to_dbfs(0.002, 0.7), -50.88, 0.01);
}

TEST(MathUtil, WrapPhase) {
    EXPECT_NEAR(wrap_phase(3.0 * pi), pi, 1e-12);
    EXPECT_NEAR(wrap_phase(-3.0 * pi), pi, 1e-12);
    EXPECT_NEAR(wrap_phase(0.5), 0.5, 1e-15);
    for (double x : {-10.0, -1.0, 0.0, 2.0, 100.0}) {
        const double w = wrap_phase(x);
        EXPECT_GT(w, -pi - 1e-12);
        EXPECT_LE(w, pi + 1e-12);
        EXPECT_NEAR(std::sin(w), std::sin(x), 1e-9);
        EXPECT_NEAR(std::cos(w), std::cos(x), 1e-9);
    }
}

TEST(MathUtil, UnwrapStep) {
    double unwrapped = 0.0;
    // A phase ramp crossing the seam must unwrap monotonically.
    for (int i = 1; i <= 100; ++i) {
        const double truth = 0.2 * i;
        unwrapped = unwrap_step(unwrapped, wrap_phase(truth));
        EXPECT_NEAR(unwrapped, truth, 1e-9);
    }
}

TEST(MathUtil, Sinc) {
    EXPECT_DOUBLE_EQ(sinc(0.0), 1.0);
    EXPECT_NEAR(sinc(0.5), 2.0 / pi, 1e-12);
    EXPECT_NEAR(sinc(1.0), 0.0, 1e-12);
    // The generator hold droop used by the analyzer: sinc(1/16).
    EXPECT_NEAR(sinc(1.0 / 16.0), 0.993587, 1e-5);
}

TEST(MathUtil, PowersOfTwo) {
    EXPECT_TRUE(is_power_of_two(1));
    EXPECT_TRUE(is_power_of_two(1024));
    EXPECT_FALSE(is_power_of_two(0));
    EXPECT_FALSE(is_power_of_two(96));
    EXPECT_EQ(next_power_of_two(96), 128u);
    EXPECT_EQ(next_power_of_two(1), 1u);
    EXPECT_EQ(next_power_of_two(1025), 2048u);
}

TEST(MathUtil, AlmostEqual) {
    EXPECT_TRUE(almost_equal(1.0, 1.0 + 1e-12));
    EXPECT_FALSE(almost_equal(1.0, 1.001));
    EXPECT_TRUE(almost_equal(1e9, 1e9 * (1.0 + 1e-10)));
}

TEST(MathUtil, DegreesRadians) {
    EXPECT_DOUBLE_EQ(rad_to_deg(pi), 180.0);
    EXPECT_DOUBLE_EQ(deg_to_rad(-90.0), -half_pi);
}

} // namespace
