// CSV write -> read round trip: csv_read must recover exactly what
// csv_writer emitted (max_digits10 formatting makes doubles round-trip
// bit-exactly through the text form).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace {

using namespace bistna;

class temp_csv {
public:
    explicit temp_csv(const char* name) : path_(std::string("/tmp/") + name) {}
    ~temp_csv() { std::remove(path_.c_str()); }
    const std::string& path() const { return path_; }

private:
    std::string path_;
};

TEST(CsvRoundTrip, HeaderAndValuesSurviveExactly) {
    temp_csv file("bistna_roundtrip_basic.csv");
    const std::vector<std::string> header = {"f_hz", "gain_db", "phase_deg"};
    const std::vector<std::vector<double>> rows = {
        {100.0, -0.123456789012345, 179.5},
        {1e6, 1.0 / 3.0, -2.718281828459045},
        {-0.0, std::numeric_limits<double>::min(), 6.02214076e23},
    };
    {
        csv_writer writer(file.path());
        writer.header(header);
        for (const auto& row : rows) {
            writer.row(row);
        }
    }

    const auto doc = csv_read(file.path());
    EXPECT_EQ(doc.header, header);
    ASSERT_EQ(doc.rows.size(), rows.size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        ASSERT_EQ(doc.rows[r].size(), rows[r].size());
        for (std::size_t c = 0; c < rows[r].size(); ++c) {
            // Bit-exact: max_digits10 text preserves every double.
            EXPECT_EQ(doc.rows[r][c], rows[r][c]) << "row " << r << " col " << c;
        }
    }
}

TEST(CsvRoundTrip, RandomDoublesAreBitExact) {
    temp_csv file("bistna_roundtrip_random.csv");
    rng gen(2026);
    std::vector<std::vector<double>> rows;
    for (int r = 0; r < 64; ++r) {
        std::vector<double> row;
        for (int c = 0; c < 5; ++c) {
            const double magnitude = std::pow(10.0, gen.uniform(-12.0, 12.0));
            row.push_back(gen.gaussian() * magnitude);
        }
        rows.push_back(row);
    }
    {
        csv_writer writer(file.path());
        writer.header({"a", "b", "c", "d", "e"});
        for (const auto& row : rows) {
            writer.row(row);
        }
    }

    const auto doc = csv_read(file.path());
    ASSERT_EQ(doc.rows.size(), rows.size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        for (std::size_t c = 0; c < rows[r].size(); ++c) {
            EXPECT_EQ(doc.rows[r][c], rows[r][c]);
        }
    }
}

TEST(CsvRoundTrip, ColumnLookupByName) {
    temp_csv file("bistna_roundtrip_columns.csv");
    {
        csv_writer writer(file.path());
        writer.header({"f_hz", "gain_db"});
        writer.row({1000.0, -3.0});
    }
    const auto doc = csv_read(file.path());
    EXPECT_EQ(doc.column("f_hz"), 0u);
    EXPECT_EQ(doc.column("gain_db"), 1u);
    EXPECT_EQ(doc.rows[0][doc.column("gain_db")], -3.0);
    EXPECT_THROW(doc.column("missing"), configuration_error);
}

TEST(CsvRoundTrip, QuotedHeaderCellsRoundTrip) {
    temp_csv file("bistna_roundtrip_quoted.csv");
    const std::vector<std::string> header = {"plain", "with,comma", "say \"hi\""};
    {
        csv_writer writer(file.path());
        writer.header(header);
        writer.row({1.0, 2.0, 3.0});
    }
    const auto doc = csv_read(file.path());
    EXPECT_EQ(doc.header, header);
    ASSERT_EQ(doc.rows.size(), 1u);
    EXPECT_EQ(doc.rows[0], (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(CsvRoundTrip, SplitInvertsEscape) {
    const std::vector<std::string> cells = {"a", "b,c", "d\"e\"", ""};
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i != 0) {
            line += ',';
        }
        line += csv_escape(cells[i]);
    }
    EXPECT_EQ(csv_split(line), cells);
}

TEST(CsvRoundTrip, DocumentWriterInvertsReader) {
    temp_csv file("bistna_roundtrip_document.csv");
    csv_document doc;
    doc.header = {"f_hz", "with,comma", "say \"hi\""};
    rng gen(7);
    for (int r = 0; r < 16; ++r) {
        doc.rows.push_back({gen.gaussian() * 1e6, gen.uniform(), -gen.uniform(0.0, 1e-9)});
    }
    csv_write(doc, file.path());
    const auto reloaded = csv_read(file.path());
    EXPECT_EQ(reloaded.header, doc.header);
    ASSERT_EQ(reloaded.rows.size(), doc.rows.size());
    for (std::size_t r = 0; r < doc.rows.size(); ++r) {
        EXPECT_EQ(reloaded.rows[r], doc.rows[r]); // bit-exact through the text form
    }

    // A second write of the reloaded document produces the same file
    // contents (write -> read is idempotent).
    temp_csv second("bistna_roundtrip_document2.csv");
    csv_write(reloaded, second.path());
    const auto again = csv_read(second.path());
    EXPECT_EQ(again.header, reloaded.header);
    EXPECT_EQ(again.rows, reloaded.rows);
}

TEST(CsvRoundTrip, DocumentWriterHandlesHeaderlessDocuments) {
    temp_csv file("bistna_roundtrip_headerless.csv");
    csv_document doc;
    doc.rows = {{1.5, -2.5}, {3.25, 4.75}};
    csv_write(doc, file.path());
    const auto reloaded = csv_read(file.path(), /*has_header=*/false);
    EXPECT_TRUE(reloaded.header.empty());
    EXPECT_EQ(reloaded.rows, doc.rows);
}

TEST(CsvRoundTrip, ReaderRejectsGarbage) {
    EXPECT_THROW(csv_read("/nonexistent_dir_xyz/file.csv"), configuration_error);

    temp_csv file("bistna_roundtrip_bad.csv");
    {
        csv_writer writer(file.path());
        writer.header({"x"});
        writer.text_row({"not-a-number"});
    }
    EXPECT_THROW(csv_read(file.path()), configuration_error);
    EXPECT_THROW(csv_split("\"unterminated"), configuration_error);
}

} // namespace
