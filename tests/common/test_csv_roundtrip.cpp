// CSV write -> read round trip: csv_read must recover exactly what
// csv_writer emitted (to_chars shortest-round-trip formatting makes
// doubles round-trip bit-exactly through the text form), independent of
// the host program's global locale, line endings, or trailing commas.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <locale>
#include <sstream>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace {

using namespace bistna;

class temp_csv {
public:
    explicit temp_csv(const char* name) : path_(std::string("/tmp/") + name) {}
    ~temp_csv() { std::remove(path_.c_str()); }
    const std::string& path() const { return path_; }

private:
    std::string path_;
};

TEST(CsvRoundTrip, HeaderAndValuesSurviveExactly) {
    temp_csv file("bistna_roundtrip_basic.csv");
    const std::vector<std::string> header = {"f_hz", "gain_db", "phase_deg"};
    const std::vector<std::vector<double>> rows = {
        {100.0, -0.123456789012345, 179.5},
        {1e6, 1.0 / 3.0, -2.718281828459045},
        {-0.0, std::numeric_limits<double>::min(), 6.02214076e23},
    };
    {
        csv_writer writer(file.path());
        writer.header(header);
        for (const auto& row : rows) {
            writer.row(row);
        }
    }

    const auto doc = csv_read(file.path());
    EXPECT_EQ(doc.header, header);
    ASSERT_EQ(doc.rows.size(), rows.size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        ASSERT_EQ(doc.rows[r].size(), rows[r].size());
        for (std::size_t c = 0; c < rows[r].size(); ++c) {
            // Bit-exact: shortest-round-trip text preserves every double.
            EXPECT_EQ(doc.rows[r][c], rows[r][c]) << "row " << r << " col " << c;
        }
    }
}

TEST(CsvRoundTrip, RandomDoublesAreBitExact) {
    temp_csv file("bistna_roundtrip_random.csv");
    rng gen(2026);
    std::vector<std::vector<double>> rows;
    for (int r = 0; r < 64; ++r) {
        std::vector<double> row;
        for (int c = 0; c < 5; ++c) {
            const double magnitude = std::pow(10.0, gen.uniform(-12.0, 12.0));
            row.push_back(gen.gaussian() * magnitude);
        }
        rows.push_back(row);
    }
    {
        csv_writer writer(file.path());
        writer.header({"a", "b", "c", "d", "e"});
        for (const auto& row : rows) {
            writer.row(row);
        }
    }

    const auto doc = csv_read(file.path());
    ASSERT_EQ(doc.rows.size(), rows.size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        for (std::size_t c = 0; c < rows[r].size(); ++c) {
            EXPECT_EQ(doc.rows[r][c], rows[r][c]);
        }
    }
}

TEST(CsvRoundTrip, ColumnLookupByName) {
    temp_csv file("bistna_roundtrip_columns.csv");
    {
        csv_writer writer(file.path());
        writer.header({"f_hz", "gain_db"});
        writer.row({1000.0, -3.0});
    }
    const auto doc = csv_read(file.path());
    EXPECT_EQ(doc.column("f_hz"), 0u);
    EXPECT_EQ(doc.column("gain_db"), 1u);
    EXPECT_EQ(doc.rows[0][doc.column("gain_db")], -3.0);
    EXPECT_THROW(doc.column("missing"), configuration_error);
}

TEST(CsvRoundTrip, QuotedHeaderCellsRoundTrip) {
    temp_csv file("bistna_roundtrip_quoted.csv");
    const std::vector<std::string> header = {"plain", "with,comma", "say \"hi\""};
    {
        csv_writer writer(file.path());
        writer.header(header);
        writer.row({1.0, 2.0, 3.0});
    }
    const auto doc = csv_read(file.path());
    EXPECT_EQ(doc.header, header);
    ASSERT_EQ(doc.rows.size(), 1u);
    EXPECT_EQ(doc.rows[0], (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(CsvRoundTrip, SplitInvertsEscape) {
    const std::vector<std::string> cells = {"a", "b,c", "d\"e\"", ""};
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i != 0) {
            line += ',';
        }
        line += csv_escape(cells[i]);
    }
    EXPECT_EQ(csv_split(line), cells);
}

TEST(CsvRoundTrip, DocumentWriterInvertsReader) {
    temp_csv file("bistna_roundtrip_document.csv");
    csv_document doc;
    doc.header = {"f_hz", "with,comma", "say \"hi\""};
    rng gen(7);
    for (int r = 0; r < 16; ++r) {
        doc.rows.push_back({gen.gaussian() * 1e6, gen.uniform(), -gen.uniform(0.0, 1e-9)});
    }
    csv_write(doc, file.path());
    const auto reloaded = csv_read(file.path());
    EXPECT_EQ(reloaded.header, doc.header);
    ASSERT_EQ(reloaded.rows.size(), doc.rows.size());
    for (std::size_t r = 0; r < doc.rows.size(); ++r) {
        EXPECT_EQ(reloaded.rows[r], doc.rows[r]); // bit-exact through the text form
    }

    // A second write of the reloaded document produces the same file
    // contents (write -> read is idempotent).
    temp_csv second("bistna_roundtrip_document2.csv");
    csv_write(reloaded, second.path());
    const auto again = csv_read(second.path());
    EXPECT_EQ(again.header, reloaded.header);
    EXPECT_EQ(again.rows, reloaded.rows);
}

TEST(CsvRoundTrip, DocumentWriterHandlesHeaderlessDocuments) {
    temp_csv file("bistna_roundtrip_headerless.csv");
    csv_document doc;
    doc.rows = {{1.5, -2.5}, {3.25, 4.75}};
    csv_write(doc, file.path());
    const auto reloaded = csv_read(file.path(), /*has_header=*/false);
    EXPECT_TRUE(reloaded.header.empty());
    EXPECT_EQ(reloaded.rows, doc.rows);
}

/// A numpunct facet using comma as the decimal point (the de_DE shape)
/// without needing that locale generated in the container.
class comma_numpunct : public std::numpunct<char> {
protected:
    char do_decimal_point() const override { return ','; }
    char do_thousands_sep() const override { return '.'; }
    std::string do_grouping() const override { return "\3"; }
};

/// RAII: installs a comma-decimal global locale for the test body.  Any
/// locale-sensitive formatting path (ostream operator<<, strtod) would
/// now emit/expect "3,14" -- the CSV layer must not care.
class global_locale_guard {
public:
    global_locale_guard()
        : previous_(std::locale::global(
              std::locale(std::locale::classic(), new comma_numpunct))) {}
    ~global_locale_guard() { std::locale::global(previous_); }

private:
    std::locale previous_;
};

TEST(CsvRoundTrip, SurvivesACommaDecimalGlobalLocale) {
    global_locale_guard locale;
    // Sanity: the injected locale really does make ostreams write commas
    // (i.e. this test would catch a locale-sensitive formatting path).
    {
        std::ostringstream probe;
        probe.imbue(std::locale());
        probe << 3.14;
        ASSERT_EQ(probe.str(), "3,14");
    }

    temp_csv file("bistna_roundtrip_locale.csv");
    const std::vector<std::vector<double>> rows = {
        {3.14, -1234567.875, 1.0 / 3.0},
        {1e-300, -2.5e300, 0.1},
    };
    {
        csv_writer writer(file.path());
        writer.header({"a", "b", "c"});
        for (const auto& row : rows) {
            writer.row(row);
        }
    }
    const auto doc = csv_read(file.path());
    ASSERT_EQ(doc.rows.size(), rows.size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        ASSERT_EQ(doc.rows[r].size(), rows[r].size()) << "row " << r;
        for (std::size_t c = 0; c < rows[r].size(); ++c) {
            EXPECT_EQ(doc.rows[r][c], rows[r][c]) << "row " << r << " col " << c;
        }
    }
}

TEST(CsvRoundTrip, NanAndInfCellsSurvive) {
    temp_csv file("bistna_roundtrip_nonfinite.csv");
    const double qnan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    {
        csv_writer writer(file.path());
        writer.header({"thd_db", "lo", "hi", "neg"});
        writer.row({qnan, inf, -inf, -qnan});
    }
    const auto doc = csv_read(file.path());
    ASSERT_EQ(doc.rows.size(), 1u);
    const auto& row = doc.rows[0];
    ASSERT_EQ(row.size(), 4u);
    // Canonical quiet NaN round-trips bit-exactly, sign included; the
    // infinities are themselves.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(row[0]), std::bit_cast<std::uint64_t>(qnan));
    EXPECT_EQ(row[1], inf);
    EXPECT_EQ(row[2], -inf);
    EXPECT_TRUE(std::isnan(row[3]));
    EXPECT_TRUE(std::signbit(row[3]));
}

TEST(CsvRoundTrip, CrlfLineEndingsAndTrailingCommasParse) {
    temp_csv file("bistna_roundtrip_crlf.csv");
    {
        // Hand-written bytes, the shape a Windows tool (or Excel export)
        // produces: CRLF line endings and a trailing comma on data rows.
        std::ofstream out(file.path(), std::ios::binary);
        out << "f_hz,gain_db\r\n"
            << "100,-0.5,\r\n"
            << "1000,-3,\r\n"
            << "10000,-20.25\r\n";
    }
    const auto doc = csv_read(file.path());
    EXPECT_EQ(doc.header, (std::vector<std::string>{"f_hz", "gain_db"}));
    ASSERT_EQ(doc.rows.size(), 3u);
    EXPECT_EQ(doc.rows[0], (std::vector<double>{100.0, -0.5}));
    EXPECT_EQ(doc.rows[1], (std::vector<double>{1000.0, -3.0}));
    EXPECT_EQ(doc.rows[2], (std::vector<double>{10000.0, -20.25}));
}

TEST(CsvRoundTrip, InteriorEmptyCellsStillFailLoudly) {
    temp_csv file("bistna_roundtrip_interior.csv");
    {
        std::ofstream out(file.path(), std::ios::binary);
        out << "a,b,c\r\n"
            << "1,,3\r\n"; // an interior empty is missing data, not a CRLF artifact
    }
    EXPECT_THROW(csv_read(file.path()), configuration_error);
}

TEST(CsvRoundTrip, ReaderRejectsGarbage) {
    EXPECT_THROW(csv_read("/nonexistent_dir_xyz/file.csv"), configuration_error);

    temp_csv file("bistna_roundtrip_bad.csv");
    {
        csv_writer writer(file.path());
        writer.header({"x"});
        writer.text_row({"not-a-number"});
    }
    EXPECT_THROW(csv_read(file.path()), configuration_error);
    EXPECT_THROW(csv_split("\"unterminated"), configuration_error);
}

} // namespace
