// The JSON writer: to_json must be the exact inverse of parse_json for
// any tree of finite numbers -- randomized round trips, bit-exact number
// formatting, escape handling, NaN/inf rejection, and independence from
// the global locale (an ostream-based writer would emit "0,03" under a
// comma-decimal locale: invalid JSON and a silently corrupt manifest).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <locale>
#include <random>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/json.hpp"

namespace {

using namespace bistna;

json_value number(double v) {
    json_value n;
    n.type = json_value::kind::number;
    n.num = v;
    return n;
}

json_value text(std::string s) {
    json_value v;
    v.type = json_value::kind::string;
    v.str = std::move(s);
    return v;
}

TEST(JsonWriter, ScalarsPrintCanonically) {
    EXPECT_EQ(to_json(json_value{}), "null");
    json_value b;
    b.type = json_value::kind::boolean;
    b.b = true;
    EXPECT_EQ(to_json(b), "true");
    b.b = false;
    EXPECT_EQ(to_json(b), "false");
    EXPECT_EQ(to_json(number(42.0)), "42");
    EXPECT_EQ(to_json(number(-7.0)), "-7");
    EXPECT_EQ(to_json(number(0.0)), "0");
    EXPECT_EQ(to_json(text("hi")), "\"hi\"");
}

TEST(JsonWriter, IntegralNumbersStayReadable) {
    // Seeds and counts travel as JSON numbers; 2^53 - 1 must not turn
    // into exponent notation.
    EXPECT_EQ(json_number(9007199254740991.0), "9007199254740991");
    EXPECT_EQ(json_number(1.0), "1");
    EXPECT_EQ(json_number(-123456789.0), "-123456789");
}

TEST(JsonWriter, NonFiniteNumbersThrow) {
    EXPECT_THROW(json_number(std::numeric_limits<double>::quiet_NaN()),
                 configuration_error);
    EXPECT_THROW(json_number(std::numeric_limits<double>::infinity()),
                 configuration_error);
    EXPECT_THROW(json_number(-std::numeric_limits<double>::infinity()),
                 configuration_error);
    json_value v = number(std::numeric_limits<double>::quiet_NaN());
    EXPECT_THROW(to_json(v), configuration_error);
}

TEST(JsonWriter, EscapesRoundTrip) {
    json_value v = text("line\nquote\"backslash\\tab\tbell\x07");
    const json_value back = parse_json(to_json(v), "escape test");
    ASSERT_EQ(back.type, json_value::kind::string);
    EXPECT_EQ(back.str, v.str);
}

TEST(JsonWriter, ObjectsKeepInsertionOrder) {
    json_value root;
    root.type = json_value::kind::object;
    root.members.emplace_back("zebra", number(1.0));
    root.members.emplace_back("alpha", number(2.0));
    EXPECT_EQ(to_json(root), "{\"zebra\":1,\"alpha\":2}");
}

// --- randomized round trips ------------------------------------------------

/// A deterministic random tree: every kind, nested containers, hostile
/// strings (escapes, control bytes) and hostile numbers (subnormals,
/// negative zero, huge magnitudes).
json_value random_tree(std::mt19937_64& rng, int depth) {
    std::uniform_int_distribution<int> pick(0, depth > 0 ? 5 : 3);
    switch (pick(rng)) {
    case 0:
        return json_value{};
    case 1: {
        json_value v;
        v.type = json_value::kind::boolean;
        v.b = (rng() & 1) != 0;
        return v;
    }
    case 2: {
        // A mix of integral values and raw bit patterns (filtered to
        // finite): the round trip must be bit-exact for all of them.
        if ((rng() & 1) != 0) {
            return number(static_cast<double>(static_cast<std::int64_t>(rng())) /
                          static_cast<double>(1ull << (rng() % 32)));
        }
        for (;;) {
            const std::uint64_t bits = rng();
            double v = 0.0;
            std::memcpy(&v, &bits, sizeof v);
            if (std::isfinite(v)) {
                return number(v);
            }
        }
    }
    case 3: {
        std::string s;
        const std::size_t len = rng() % 24;
        for (std::size_t i = 0; i < len; ++i) {
            s.push_back(static_cast<char>(rng() % 0x60 + 1)); // control + ASCII
        }
        return text(std::move(s));
    }
    case 4: {
        json_value v;
        v.type = json_value::kind::array;
        const std::size_t len = rng() % 5;
        for (std::size_t i = 0; i < len; ++i) {
            v.elements.push_back(random_tree(rng, depth - 1));
        }
        return v;
    }
    default: {
        json_value v;
        v.type = json_value::kind::object;
        const std::size_t len = rng() % 5;
        for (std::size_t i = 0; i < len; ++i) {
            // Parser rejects duplicate keys; index-prefix keeps them unique.
            v.members.emplace_back("k" + std::to_string(i) + "_" +
                                       std::to_string(rng() % 100),
                                   random_tree(rng, depth - 1));
        }
        return v;
    }
    }
}

TEST(JsonWriter, RandomTreesRoundTripExactly) {
    std::mt19937_64 rng(0xB157AA5Eu);
    for (int i = 0; i < 500; ++i) {
        const json_value tree = random_tree(rng, 4);
        const std::string once = to_json(tree);
        const json_value back = parse_json(once, "round trip");
        EXPECT_TRUE(json_equal(tree, back)) << "iteration " << i << ": " << once;
        // And the writer is a fixed point: serialize(parse(serialize)) is
        // byte-identical, so stored JSON never churns.
        EXPECT_EQ(to_json(back), once) << "iteration " << i;
    }
}

TEST(JsonWriter, NegativeZeroSurvives) {
    const json_value back = parse_json(to_json(number(-0.0)), "neg zero");
    ASSERT_EQ(back.type, json_value::kind::number);
    EXPECT_TRUE(std::signbit(back.num));
    EXPECT_FALSE(json_equal(number(0.0), number(-0.0)));
}

// --- locale independence ---------------------------------------------------

class comma_numpunct : public std::numpunct<char> {
protected:
    char do_decimal_point() const override { return ','; }
    char do_thousands_sep() const override { return '.'; }
    std::string do_grouping() const override { return "\3"; }
};

class global_locale_guard {
public:
    global_locale_guard()
        : previous_(std::locale::global(
              std::locale(std::locale::classic(), new comma_numpunct))) {}
    ~global_locale_guard() { std::locale::global(previous_); }

private:
    std::locale previous_;
};

TEST(JsonWriter, SurvivesACommaDecimalGlobalLocale) {
    global_locale_guard locale;
    {
        // Sanity: the locale really does make ostreams write commas, so
        // this test would catch an ostream-based number path.
        std::ostringstream probe;
        probe.imbue(std::locale());
        probe << 3.14;
        ASSERT_EQ(probe.str(), "3,14");
    }
    EXPECT_EQ(json_number(0.03), "0.03");
    EXPECT_EQ(json_number(1234567.5), "1234567.5");
    const json_value back = parse_json(to_json(number(0.25)), "locale");
    EXPECT_EQ(back.num, 0.25);
}

} // namespace
