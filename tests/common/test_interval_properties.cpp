// Property-based checks of interval arithmetic: for randomly drawn
// intervals and points inside them, the fundamental enclosure property
// (x in A, y in B => x op y in A op B) must hold for +, -, *, and the
// result widths must behave monotonically.
#include <gtest/gtest.h>

#include <cmath>

#include "common/interval.hpp"
#include "common/rng.hpp"

namespace {

using namespace bistna;

constexpr int kTrials = 2000;

interval random_interval(rng& gen, double scale) {
    const double a = gen.uniform(-scale, scale);
    const double b = gen.uniform(-scale, scale);
    return interval::from_unordered(a, b);
}

double random_point_in(rng& gen, const interval& iv) {
    return iv.lo() + gen.uniform() * iv.width();
}

TEST(IntervalProperties, AdditionContainsPointwiseSums) {
    rng gen(101);
    for (int t = 0; t < kTrials; ++t) {
        const interval a = random_interval(gen, 10.0);
        const interval b = random_interval(gen, 10.0);
        const double x = random_point_in(gen, a);
        const double y = random_point_in(gen, b);
        const interval sum = a + b;
        EXPECT_TRUE(sum.contains(x + y))
            << a << " + " << b << " should contain " << x + y;
    }
}

TEST(IntervalProperties, SubtractionContainsPointwiseDifferences) {
    rng gen(102);
    for (int t = 0; t < kTrials; ++t) {
        const interval a = random_interval(gen, 10.0);
        const interval b = random_interval(gen, 10.0);
        const double x = random_point_in(gen, a);
        const double y = random_point_in(gen, b);
        EXPECT_TRUE((a - b).contains(x - y));
    }
}

TEST(IntervalProperties, MultiplicationContainsPointwiseProducts) {
    rng gen(103);
    for (int t = 0; t < kTrials; ++t) {
        const interval a = random_interval(gen, 6.0);
        const interval b = random_interval(gen, 6.0);
        const double x = random_point_in(gen, a);
        const double y = random_point_in(gen, b);
        // The exact product x*y may fall a rounding step outside the
        // interval-arithmetic endpoints; allow one ulp-scale slack.
        const interval product = (a * b) + interval::centered(0.0, 1e-12);
        EXPECT_TRUE(product.contains(x * y))
            << a << " * " << b << " should contain " << x * y;
    }
}

TEST(IntervalProperties, AdditionWidthIsSumOfWidths) {
    rng gen(104);
    for (int t = 0; t < kTrials; ++t) {
        const interval a = random_interval(gen, 10.0);
        const interval b = random_interval(gen, 10.0);
        EXPECT_NEAR((a + b).width(), a.width() + b.width(), 1e-12);
        EXPECT_NEAR((a - b).width(), a.width() + b.width(), 1e-12);
    }
}

TEST(IntervalProperties, WidthIsMonotoneUnderContainment) {
    // A contained in B  =>  A op C contained in B op C (inclusion
    // isotonicity), hence width(A op C) <= width(B op C).
    rng gen(105);
    for (int t = 0; t < kTrials; ++t) {
        const interval b = random_interval(gen, 10.0);
        const double lo = random_point_in(gen, b);
        const interval a = interval::from_unordered(lo, random_point_in(gen, b));
        ASSERT_TRUE(b.contains(a));

        const interval c = random_interval(gen, 5.0);
        EXPECT_TRUE((b + c).contains(a + c));
        EXPECT_TRUE((b - c).contains(a - c));
        EXPECT_LE((a + c).width(), (b + c).width() + 1e-12);
        EXPECT_LE((a * c).width(), (b * c).width() + 1e-12);
        EXPECT_TRUE(square(b).contains(square(a)));
    }
}

TEST(IntervalProperties, DerivedFunctionsPreserveEnclosure) {
    rng gen(106);
    for (int t = 0; t < kTrials; ++t) {
        const interval a = random_interval(gen, 4.0);
        const double x = random_point_in(gen, a);
        EXPECT_TRUE(square(a).contains(x * x));
        EXPECT_TRUE(atan(a).contains(std::atan(x)));

        const interval positive = interval(std::abs(a.lo()), std::abs(a.lo()) + a.width());
        const double p = positive.lo() + gen.uniform() * positive.width();
        EXPECT_TRUE(sqrt(positive).contains(std::sqrt(p)));

        const interval b = random_interval(gen, 4.0);
        const double y = random_point_in(gen, b);
        const interval hyp = hypot(a, b) + interval::centered(0.0, 1e-12);
        EXPECT_TRUE(hyp.contains(std::hypot(x, y)));
    }
}

TEST(IntervalProperties, HullAndIntersectBracketTheInputs) {
    rng gen(107);
    for (int t = 0; t < kTrials; ++t) {
        const interval a = random_interval(gen, 10.0);
        const interval b = random_interval(gen, 10.0);
        const interval h = hull(a, b);
        EXPECT_TRUE(h.contains(a));
        EXPECT_TRUE(h.contains(b));
        if (a.intersects(b)) {
            const interval m = intersect(a, b);
            EXPECT_TRUE(a.contains(m));
            EXPECT_TRUE(b.contains(m));
            EXPECT_LE(m.width(), std::min(a.width(), b.width()) + 1e-15);
        }
    }
}

} // namespace
