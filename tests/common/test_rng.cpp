#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/statistics.hpp"

namespace {

using bistna::rng;

TEST(Rng, DeterministicForSameSeed) {
    rng a(123);
    rng b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next_u64(), b.next_u64());
    }
}

TEST(Rng, DifferentSeedsDiverge) {
    rng a(1);
    rng b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        equal += a.next_u64() == b.next_u64();
    }
    EXPECT_LT(equal, 2);
}

TEST(Rng, DerivedStreamSeedsAreDistinctAndDeterministic) {
    EXPECT_EQ(bistna::derive_stream_seed(1, 0), bistna::derive_stream_seed(1, 0));
    EXPECT_NE(bistna::derive_stream_seed(1, 0), bistna::derive_stream_seed(1, 1));
    EXPECT_NE(bistna::derive_stream_seed(1, 0), bistna::derive_stream_seed(2, 0));
    // Tagged derivation must not collapse to the raw seed either.
    EXPECT_NE(bistna::derive_stream_seed(1, 0), 1u);
}

TEST(Rng, DerivedStreamsDoNotOverlap) {
    rng a(bistna::derive_stream_seed(42, 0));
    rng b(bistna::derive_stream_seed(42, 1));
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        equal += a.next_u64() == b.next_u64();
    }
    EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
    rng generator(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = generator.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespected) {
    rng generator(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = generator.uniform(-2.5, 4.0);
        EXPECT_GE(u, -2.5);
        EXPECT_LT(u, 4.0);
    }
}

TEST(Rng, GaussianMomentsMatch) {
    rng generator(42);
    bistna::running_stats stats;
    for (int i = 0; i < 200000; ++i) {
        stats.add(generator.gaussian(1.5, 0.5));
    }
    EXPECT_NEAR(stats.mean(), 1.5, 0.01);
    EXPECT_NEAR(stats.stddev(), 0.5, 0.01);
}

TEST(Rng, UniformIntUnbiasedSmallRange) {
    rng generator(9);
    int counts[5] = {0, 0, 0, 0, 0};
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        ++counts[generator.uniform_int(5)];
    }
    for (int c : counts) {
        EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.01);
    }
}

TEST(Rng, BernoulliProbability) {
    rng generator(11);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        hits += generator.bernoulli(0.3);
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SpawnedStreamsAreIndependentButDeterministic) {
    rng parent1(77);
    rng parent2(77);
    rng child1 = parent1.spawn();
    rng child2 = parent2.spawn();
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(child1.next_u64(), child2.next_u64());
    }
    // Child differs from parent continuation.
    EXPECT_NE(parent1.next_u64(), child1.next_u64());
}

} // namespace
