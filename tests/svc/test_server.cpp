// The screening service daemon, in process: session lifecycle, streamed
// bit-identity against the offline unit_stream, fairness across
// concurrent sessions, graceful overload shedding (admission, quota,
// slow readers), cooperative cancel (frame and disconnect), malformed
// input survival, framing-damage byte offsets, idle timeouts and the TCP
// loopback listener.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/error.hpp"
#include "shard/manifest.hpp"
#include "shard/unit_stream.hpp"
#include "svc/client.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "svc/socket.hpp"

namespace {

using namespace bistna;
using namespace std::chrono_literals;
using svc::client;
using svc::error_code;
using svc::server_options;
using svc::service_server;

/// A unique socket path per test (parallel ctest shards share /tmp).
std::string socket_path(const char* name) {
    return "/tmp/bistna_svc_" + std::string(name) + "_" + std::to_string(::getpid()) +
           ".sock";
}

/// Short-acquisition manifest; `dice` scales the job length.
shard::lot_manifest fast_manifest(std::uint64_t dice, std::uint64_t first_seed = 11) {
    shard::lot_manifest manifest;
    manifest.periods = 20;
    manifest.settle_periods = 4;
    manifest.distortion_periods = 40;
    manifest.calibration_periods = 256;
    manifest.dice = dice;
    manifest.first_seed = first_seed;
    manifest.threads = 1;
    manifest.batch_lanes = 4;
    return manifest;
}

server_options fast_options(const std::string& path) {
    server_options o;
    o.listen_path = path;
    o.worker_threads = 2;
    o.max_active_jobs = 2;
    o.admission_capacity = 8;
    o.session_quota = 4;
    return o;
}

/// What the offline path would produce for this manifest, via the same
/// unit_stream seam the shard worker appends from.
std::vector<store::record> offline_records(const shard::lot_manifest& manifest) {
    shard::unit_stream stream(manifest, 0, manifest.total_units());
    std::vector<store::record> records;
    while (auto item = stream.next()) {
        records.push_back(std::move(item->record));
    }
    return records;
}

void send_raw(int fd, const std::vector<std::uint8_t>& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const long n = svc::send_some(fd, bytes.data() + sent, bytes.size() - sent);
        ASSERT_GT(n, 0) << "raw send failed";
        sent += static_cast<std::size_t>(n);
    }
}

/// Spin until `predicate` holds or `deadline` elapses.
template <typename Fn> bool eventually(Fn predicate, std::chrono::milliseconds deadline) {
    const auto until = std::chrono::steady_clock::now() + deadline;
    while (std::chrono::steady_clock::now() < until) {
        if (predicate()) {
            return true;
        }
        std::this_thread::sleep_for(2ms);
    }
    return predicate();
}

TEST(SvcServer, StreamsAJobBitIdenticalToTheOfflinePath) {
    const std::string path = socket_path("basic");
    service_server server(fast_options(path));
    server.start();

    const auto manifest = fast_manifest(5);
    const auto expected = offline_records(manifest);

    client c(path);
    EXPECT_EQ(c.hello().protocol, svc::protocol_version);
    const auto records = c.run(manifest);

    ASSERT_EQ(records.size(), expected.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i], expected[i]) << "unit " << i << " diverged";
    }
    server.stop();
    const auto counters = server.counters();
    EXPECT_EQ(counters.jobs_completed, 1u);
    EXPECT_EQ(counters.jobs_failed, 0u);
}

TEST(SvcServer, ConcurrentSessionsShareOnePoolAndStayBitIdentical) {
    const std::string path = socket_path("concurrent");
    service_server server(fast_options(path));
    server.start();

    // Three different lots (screening x2, dictionary x1), three sessions,
    // all at once on one worker pool.
    std::vector<shard::lot_manifest> lots = {fast_manifest(6, 100),
                                             fast_manifest(4, 500)};
    auto dict = fast_manifest(0);
    dict.workload = shard::workload_kind::dictionary;
    dict.grid_points = 2;
    lots.push_back(dict);

    std::vector<std::future<std::vector<store::record>>> futures;
    for (const auto& lot : lots) {
        futures.push_back(std::async(std::launch::async, [&path, lot] {
            client c(path);
            return c.run(lot);
        }));
    }
    for (std::size_t i = 0; i < lots.size(); ++i) {
        const auto records = futures[i].get();
        const auto expected = offline_records(lots[i]);
        ASSERT_EQ(records.size(), expected.size()) << "lot " << i;
        for (std::size_t u = 0; u < records.size(); ++u) {
            EXPECT_EQ(records[u], expected[u]) << "lot " << i << " unit " << u;
        }
    }
    server.stop();
    EXPECT_EQ(server.counters().jobs_completed, 3u);
}

TEST(SvcServer, AdmissionOverloadShedsWithTypedError) {
    const std::string path = socket_path("overload");
    auto options = fast_options(path);
    options.worker_threads = 1;
    options.max_active_jobs = 1;
    options.admission_capacity = 1;
    service_server server(std::move(options));
    server.start();

    // A occupies the single active slot with a job far too large to
    // finish within the test (it is cancelled below, so this stays fast).
    client a(path);
    a.submit(1, fast_manifest(5000));
    auto first = a.next_event(); // progress 0/150: the job was admitted
    ASSERT_TRUE(first.has_value());
    ASSERT_EQ(first->type, client::event::kind::progress);

    // B fills the one admission slot.  A queued submit gets no ack (its
    // first frame is the progress on dispatch), so give the event loop a
    // beat to process it before C races in.
    client b(path);
    b.submit(1, fast_manifest(2, 900));
    std::this_thread::sleep_for(200ms);

    // C must be shed immediately with a typed overloaded error -- never
    // queued invisibly, never hung.
    client c(path);
    c.submit(1, fast_manifest(2, 901));
    try {
        (void)c.collect(1);
        FAIL() << "expected overloaded";
    } catch (const svc::service_error& e) {
        EXPECT_EQ(e.code(), error_code::overloaded);
        EXPECT_EQ(e.frame().request, 1u);
    }

    // A cancels; B's queued job then dispatches and completes intact.
    a.cancel(1);
    try {
        (void)a.collect(1);
        FAIL() << "expected cancelled";
    } catch (const svc::service_error& e) {
        EXPECT_EQ(e.code(), error_code::cancelled);
    }
    const auto records = b.collect(1);
    EXPECT_EQ(records.size(), 2u);
    server.stop();
    EXPECT_GE(server.counters().jobs_rejected, 1u);
}

TEST(SvcServer, SessionQuotaShedsTheExtraRequest) {
    const std::string path = socket_path("quota");
    auto options = fast_options(path);
    options.session_quota = 2;
    options.worker_threads = 1;
    options.max_active_jobs = 1;
    service_server server(std::move(options));
    server.start();

    client c(path);
    // Request 1 must outlive the whole exchange so both 1 and 2 are live
    // when 3 arrives -- stop() cancels it, so the size costs nothing.
    c.submit(1, fast_manifest(3000));
    c.submit(2, fast_manifest(2, 700));
    c.submit(3, fast_manifest(2, 701)); // over quota
    bool saw_overloaded = false;
    // Request 3's rejection arrives while 1 and 2 are still streaming.
    for (int events = 0; events < 400 && !saw_overloaded; ++events) {
        auto e = c.next_event();
        ASSERT_TRUE(e.has_value());
        if (e->type == client::event::kind::error) {
            EXPECT_EQ(e->error.request, 3u);
            EXPECT_EQ(e->error.code, error_code::overloaded);
            saw_overloaded = true;
        }
    }
    EXPECT_TRUE(saw_overloaded);
    server.stop();
}

TEST(SvcServer, SlowButSteadyReaderBackpressuresWithoutShedding) {
    const std::string path = socket_path("backpressure");
    auto options = fast_options(path);
    options.send_queue_limit = 2048;
    options.socket_send_buffer = 4096;
    options.stall_timeout_ms = 4000; // generous: steady readers never stall
    service_server server(std::move(options));
    server.start();

    const auto manifest = fast_manifest(30);
    const auto expected = offline_records(manifest);

    client c(path);
    c.submit(1, manifest);
    std::vector<store::record> records;
    for (;;) {
        auto e = c.next_event();
        ASSERT_TRUE(e.has_value());
        if (e->type == client::event::kind::result) {
            records.push_back(std::move(e->result.record));
            std::this_thread::sleep_for(2ms); // slow, but draining
        } else if (e->type == client::event::kind::done) {
            break;
        } else if (e->type == client::event::kind::error) {
            FAIL() << "unexpected error: " << e->error.message;
        }
    }
    ASSERT_EQ(records.size(), expected.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i], expected[i]) << "unit " << i;
    }
    server.stop();
    EXPECT_EQ(server.counters().sessions_shed, 0u);
    EXPECT_EQ(server.counters().jobs_completed, 1u);
}

TEST(SvcServer, StalledReaderIsShedWithSlowReaderError) {
    const std::string path = socket_path("shed");
    auto options = fast_options(path);
    options.send_queue_limit = 2048;
    options.socket_send_buffer = 4096;
    options.stall_timeout_ms = 150;
    service_server server(std::move(options));
    server.start();

    client c(path);
    c.submit(1, fast_manifest(120));
    // Read NOTHING: the kernel buffer fills, then the server-side queue,
    // then the stall clock runs out.
    ASSERT_TRUE(eventually([&] { return server.counters().sessions_shed == 1; }, 8000ms));

    // The verdict is still delivered: drain what the kernel buffered.
    // The shed drops the queued backlog but never truncates mid-frame,
    // so the stream stays well-formed all the way to the typed
    // slow_reader frame and the EOF after it.
    bool saw_shed = false;
    for (;;) {
        std::optional<client::event> e = c.next_event();
        if (!e) {
            break;
        }
        if (e->type == client::event::kind::error) {
            EXPECT_EQ(e->error.code, error_code::slow_reader);
            EXPECT_EQ(e->error.request, 0u); // session-scoped
            saw_shed = true;
        }
    }
    EXPECT_TRUE(saw_shed);
    server.stop();
    EXPECT_GE(server.counters().jobs_cancelled, 1u);
}

TEST(SvcServer, MalformedSubmitGetsBadRequestAndSessionSurvives) {
    const std::string path = socket_path("badsubmit");
    service_server server(fast_options(path));
    server.start();

    client c(path);
    // CRC-valid frame, garbage payload: a request-level error.
    store::record bad;
    bad.type = store::record_type::svc_submit;
    const std::string not_json = "{\"request\": oops";
    bad.payload.assign(not_json.begin(), not_json.end());
    send_raw(c.fd(), svc::wire_bytes(bad));

    auto e = c.next_event();
    ASSERT_TRUE(e.has_value());
    ASSERT_EQ(e->type, client::event::kind::error);
    EXPECT_EQ(e->error.code, error_code::bad_request);

    // Unknown-but-well-formed frame types are also survivable.
    store::record odd;
    odd.type = store::record_type::svc_done; // clients never send done
    const std::string done = "{\"request\":1,\"units\":0}";
    odd.payload.assign(done.begin(), done.end());
    send_raw(c.fd(), svc::wire_bytes(odd));
    e = c.next_event();
    ASSERT_TRUE(e.has_value());
    ASSERT_EQ(e->type, client::event::kind::error);
    EXPECT_EQ(e->error.code, error_code::bad_request);

    // The same session still does real work afterwards.
    const auto records = c.run(fast_manifest(2));
    EXPECT_EQ(records.size(), 2u);
    server.stop();
    EXPECT_EQ(server.counters().sessions_shed, 0u);
}

TEST(SvcServer, DuplicateRequestIdIsRejected) {
    const std::string path = socket_path("dupid");
    service_server server(fast_options(path));
    server.start();

    client c(path);
    // The first job must still be live when the duplicate lands, so make
    // it far larger than the test's lifetime (stop() cancels it).
    c.submit(7, fast_manifest(3000));
    c.submit(7, fast_manifest(2, 800)); // same id while the first is live
    bool saw_duplicate = false;
    for (int events = 0; events < 100 && !saw_duplicate; ++events) {
        auto e = c.next_event();
        ASSERT_TRUE(e.has_value());
        if (e->type == client::event::kind::error) {
            EXPECT_EQ(e->error.request, 7u);
            EXPECT_EQ(e->error.code, error_code::bad_request);
            saw_duplicate = true;
        }
        if (e->type == client::event::kind::done) {
            break;
        }
    }
    EXPECT_TRUE(saw_duplicate);
    server.stop();
}

TEST(SvcServer, FramingDamageAnswersWithByteOffsetThenCloses) {
    const std::string path = socket_path("framing");
    service_server server(fast_options(path));
    server.start();

    client c(path);
    // One valid frame first, so the reported offset proves it is
    // absolute within the session's byte stream, not per-read.
    const auto valid = svc::wire_bytes(svc::encode(svc::cancel_frame{99}));
    send_raw(c.fd(), valid);

    auto corrupt = svc::wire_bytes(svc::encode(svc::cancel_frame{100}));
    corrupt[corrupt.size() - 1] ^= 0xFF; // break the CRC
    send_raw(c.fd(), corrupt);

    auto e = c.next_event();
    ASSERT_TRUE(e.has_value());
    ASSERT_EQ(e->type, client::event::kind::error);
    EXPECT_EQ(e->error.code, error_code::bad_frame);
    ASSERT_TRUE(e->error.offset.has_value());
    EXPECT_EQ(*e->error.offset, valid.size());
    // A byte stream cannot resync after CRC damage: the session closes.
    EXPECT_FALSE(c.next_event().has_value());
    server.stop();
}

TEST(SvcServer, CancelFrameStopsAJobMidStream) {
    const std::string path = socket_path("cancel");
    service_server server(fast_options(path));
    server.start();

    client c(path);
    // Large enough that the pool cannot finish before the cancel frame
    // is processed (cancel after the first streamed result).
    c.submit(1, fast_manifest(3000));
    // Wait for the first result so the cancel lands mid-job.
    std::uint64_t received = 0;
    bool cancelled = false;
    for (;;) {
        auto e = c.next_event();
        ASSERT_TRUE(e.has_value());
        if (e->type == client::event::kind::result) {
            if (++received == 1) {
                c.cancel(1);
            }
        } else if (e->type == client::event::kind::error) {
            EXPECT_EQ(e->error.request, 1u);
            EXPECT_EQ(e->error.code, error_code::cancelled);
            cancelled = true;
            break;
        } else if (e->type == client::event::kind::done) {
            break; // legal but unexpected for a lot this large
        }
    }
    EXPECT_TRUE(cancelled);
    EXPECT_LT(received, 3000u);

    // Cooperative cancel is per request, not per session.
    const auto records = c.run(fast_manifest(2, 600));
    EXPECT_EQ(records.size(), 2u);
    server.stop();
}

TEST(SvcServer, ClientDisconnectCancelsItsJobs) {
    const std::string path = socket_path("disconnect");
    auto options = fast_options(path);
    options.worker_threads = 1;
    service_server server(std::move(options));
    server.start();

    {
        client doomed(path);
        doomed.submit(1, fast_manifest(2000));
        auto e = doomed.next_event(); // admitted
        ASSERT_TRUE(e.has_value());
    } // socket slams shut mid-job

    ASSERT_TRUE(eventually([&] { return server.counters().jobs_cancelled >= 1; },
                           8000ms));
    ASSERT_TRUE(eventually([&] { return server.counters().sessions_closed >= 1; },
                           2000ms));

    // The pool is free again: a new session's job runs promptly.
    client c(path);
    const auto records = c.run(fast_manifest(2, 300));
    EXPECT_EQ(records.size(), 2u);
    server.stop();
}

TEST(SvcServer, IdleSessionsAreClosedWithTypedError) {
    const std::string path = socket_path("idle");
    auto options = fast_options(path);
    options.idle_timeout_ms = 100;
    service_server server(std::move(options));
    server.start();

    client c(path);
    auto e = c.next_event(); // sit idle: the next frame is the timeout
    ASSERT_TRUE(e.has_value());
    ASSERT_EQ(e->type, client::event::kind::error);
    EXPECT_EQ(e->error.code, error_code::idle_timeout);
    EXPECT_FALSE(c.next_event().has_value()); // then EOF
    server.stop();
}

TEST(SvcServer, TcpLoopbackListenerServesJobs) {
    auto options = fast_options("");
    options.listen_path.clear();
    options.tcp_port = 0; // ephemeral
    service_server server(std::move(options));
    server.start();
    ASSERT_NE(server.tcp_port(), 0);

    client c("tcp:" + std::to_string(server.tcp_port()));
    const auto manifest = fast_manifest(3);
    const auto records = c.run(manifest);
    const auto expected = offline_records(manifest);
    ASSERT_EQ(records.size(), expected.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i], expected[i]);
    }
    server.stop();
}

TEST(SvcServer, StopMidJobShutsDownCleanly) {
    const std::string path = socket_path("stopmid");
    service_server server(fast_options(path));
    server.start();
    client c(path);
    c.submit(1, fast_manifest(200));
    auto e = c.next_event();
    ASSERT_TRUE(e.has_value());
    server.stop(); // cancels the job, notifies, joins -- must not hang
    EXPECT_FALSE(server.running());
}

} // namespace
