// The service wire protocol: typed encode/decode round trips, the shared
// manifest schema riding inside submit frames, and the incremental frame
// decoder's robustness contract -- byte-dribbled feeds reassemble exactly,
// while truncation, CRC damage and implausible lengths throw
// serialization_error carrying the absolute stream offset of the first
// offending byte.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "shard/manifest.hpp"
#include "store/format.hpp"
#include "svc/protocol.hpp"

namespace {

using namespace bistna;
using svc::frame_decoder;

shard::lot_manifest sample_manifest() {
    shard::lot_manifest m;
    m.workload = shard::workload_kind::screening;
    m.dice = 24;
    m.first_seed = 101;
    m.sigma = 0.025;
    m.batch_lanes = 4;
    m.measure_distortion = true;
    return m;
}

// --- typed frame round trips -----------------------------------------------

TEST(SvcProtocol, HelloRoundTrips) {
    const auto record = svc::encode(svc::hello_frame{});
    const svc::hello_frame back = svc::decode_hello(record);
    EXPECT_EQ(back.protocol, svc::protocol_version);
    EXPECT_EQ(back.server, "bistna_serverd");
}

TEST(SvcProtocol, SubmitCarriesTheManifestSchemaVerbatim) {
    svc::submit_frame f;
    f.request = 42;
    f.manifest = sample_manifest();
    const svc::submit_frame back = svc::decode_submit(svc::encode(f));
    EXPECT_EQ(back.request, 42u);
    // One schema: what rides in the frame is exactly what a lot file
    // holds, byte for byte after the round trip.
    EXPECT_EQ(back.manifest.to_json(), f.manifest.to_json());
    EXPECT_EQ(back.manifest.dice, 24u);
    EXPECT_EQ(back.manifest.first_seed, 101u);
}

TEST(SvcProtocol, SubmitAcceptsDictionaryWorkloads) {
    svc::submit_frame f;
    f.request = 7;
    f.manifest.workload = shard::workload_kind::dictionary;
    f.manifest.grid_points = 5;
    const svc::submit_frame back = svc::decode_submit(svc::encode(f));
    EXPECT_EQ(back.manifest.workload, shard::workload_kind::dictionary);
    EXPECT_EQ(back.manifest.to_json(), f.manifest.to_json());
}

TEST(SvcProtocol, ProgressErrorCancelDoneRoundTrip) {
    const auto progress =
        svc::decode_progress(svc::encode(svc::progress_frame{9, 128, 512}));
    EXPECT_EQ(progress.request, 9u);
    EXPECT_EQ(progress.completed, 128u);
    EXPECT_EQ(progress.total, 512u);

    svc::error_frame e;
    e.request = 3;
    e.code = svc::error_code::slow_reader;
    e.message = "send queue stalled";
    e.offset = 12345;
    const auto error = svc::decode_error(svc::encode(e));
    EXPECT_EQ(error.request, 3u);
    EXPECT_EQ(error.code, svc::error_code::slow_reader);
    EXPECT_EQ(error.message, "send queue stalled");
    ASSERT_TRUE(error.offset.has_value());
    EXPECT_EQ(*error.offset, 12345u);

    svc::error_frame no_offset;
    no_offset.code = svc::error_code::overloaded;
    no_offset.message = "full";
    EXPECT_FALSE(svc::decode_error(svc::encode(no_offset)).offset.has_value());

    EXPECT_EQ(svc::decode_cancel(svc::encode(svc::cancel_frame{77})).request, 77u);

    const auto done = svc::decode_done(svc::encode(svc::done_frame{5, 64}));
    EXPECT_EQ(done.request, 5u);
    EXPECT_EQ(done.units, 64u);
}

TEST(SvcProtocol, ResultWrapsTheInnerRecordExactly) {
    store::record inner;
    inner.type = store::record_type::screening_report;
    inner.payload = {0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01};
    svc::result_frame f;
    f.request = 11;
    f.unit = 1000;
    f.record = inner;
    const svc::result_frame back = svc::decode_result(svc::encode(f));
    EXPECT_EQ(back.request, 11u);
    EXPECT_EQ(back.unit, 1000u);
    EXPECT_EQ(back.record.type, inner.type);
    EXPECT_EQ(back.record.payload, inner.payload);
}

TEST(SvcProtocol, ErrorCodeNamesRoundTrip) {
    for (const svc::error_code code :
         {svc::error_code::bad_frame, svc::error_code::bad_request,
          svc::error_code::overloaded, svc::error_code::slow_reader,
          svc::error_code::cancelled, svc::error_code::idle_timeout,
          svc::error_code::shutdown, svc::error_code::internal}) {
        EXPECT_EQ(svc::error_code_from_name(svc::error_code_name(code)), code);
    }
    EXPECT_THROW(svc::error_code_from_name("totally_fine"), configuration_error);
}

TEST(SvcProtocol, DecodersRejectTheWrongFrameType) {
    const auto hello = svc::encode(svc::hello_frame{});
    EXPECT_THROW(svc::decode_submit(hello), configuration_error);
    EXPECT_THROW(svc::decode_progress(hello), configuration_error);
    EXPECT_THROW(svc::decode_result(hello), configuration_error);
}

TEST(SvcProtocol, MalformedControlPayloadsThrow) {
    const std::string not_json = "{\"request\": }";
    store::record r;
    r.type = store::record_type::svc_cancel;
    r.payload.assign(not_json.begin(), not_json.end());
    EXPECT_THROW(svc::decode_cancel(r), configuration_error);

    // Strict integer fields: 1.5 completed units is nonsense and must not
    // be silently truncated.
    const std::string fractional =
        "{\"request\":1,\"completed\":1.5,\"total\":4}";
    r.type = store::record_type::svc_progress;
    r.payload.assign(fractional.begin(), fractional.end());
    EXPECT_THROW(svc::decode_progress(r), configuration_error);

    // 2^53 would round in a double; the reader refuses instead.
    const std::string huge = "{\"request\":9007199254740993,\"units\":1}";
    r.type = store::record_type::svc_done;
    r.payload.assign(huge.begin(), huge.end());
    EXPECT_THROW(svc::decode_done(r), configuration_error);
}

TEST(SvcProtocol, TruncatedResultPayloadThrows) {
    store::record r;
    r.type = store::record_type::svc_result;
    r.payload = {1, 2, 3}; // far short of the 20-byte prefix
    EXPECT_THROW(svc::decode_result(r), serialization_error);
}

// --- incremental frame decoder ---------------------------------------------

std::vector<std::uint8_t> wire_concat(const std::vector<store::record>& records) {
    std::vector<std::uint8_t> bytes;
    for (const auto& r : records) {
        const auto frame = svc::wire_bytes(r);
        bytes.insert(bytes.end(), frame.begin(), frame.end());
    }
    return bytes;
}

TEST(SvcFrameDecoder, ReassemblesByteDribbledFrames) {
    const std::vector<store::record> sent = {
        svc::encode(svc::hello_frame{}),
        svc::encode(svc::progress_frame{1, 2, 3}),
        svc::encode(svc::done_frame{1, 3}),
    };
    const auto bytes = wire_concat(sent);

    frame_decoder decoder;
    std::vector<store::record> got;
    for (const std::uint8_t byte : bytes) {
        decoder.feed(std::span<const std::uint8_t>(&byte, 1));
        while (auto r = decoder.next()) {
            got.push_back(*r);
        }
    }
    ASSERT_EQ(got.size(), sent.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].type, sent[i].type);
        EXPECT_EQ(got[i].payload, sent[i].payload);
    }
    EXPECT_EQ(decoder.offset(), bytes.size());
    EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(SvcFrameDecoder, TruncatedFrameWaitsForMoreBytes) {
    const auto bytes = wire_concat({svc::encode(svc::done_frame{1, 1})});
    frame_decoder decoder;
    decoder.feed(std::span<const std::uint8_t>(bytes.data(), bytes.size() - 1));
    EXPECT_FALSE(decoder.next().has_value());
    EXPECT_EQ(decoder.buffered(), bytes.size() - 1);
    decoder.feed(std::span<const std::uint8_t>(bytes.data() + bytes.size() - 1, 1));
    EXPECT_TRUE(decoder.next().has_value());
}

TEST(SvcFrameDecoder, CrcDamageNamesTheFrameOffset) {
    const auto good = wire_concat({svc::encode(svc::progress_frame{1, 0, 8})});
    auto bytes = wire_concat({svc::encode(svc::done_frame{2, 8})});
    bytes[store::frame_header_size] ^= 0x40; // flip one payload bit

    frame_decoder decoder;
    decoder.feed(std::span<const std::uint8_t>(good.data(), good.size()));
    ASSERT_TRUE(decoder.next().has_value());
    decoder.feed(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
    try {
        (void)decoder.next();
        FAIL() << "expected serialization_error";
    } catch (const serialization_error& e) {
        // The damaged frame starts right after the good one: the offset
        // is absolute within the stream, not within one feed() call.
        EXPECT_EQ(e.byte_offset(), good.size());
        EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos);
    }
}

TEST(SvcFrameDecoder, ImplausibleLengthIsRejectedBeforeBuffering) {
    frame_decoder decoder(/*max_payload=*/1024);
    std::uint8_t header[store::frame_header_size] = {};
    const std::uint32_t huge = 1u << 30;
    std::memcpy(header + 4, &huge, 4);
    decoder.feed(std::span<const std::uint8_t>(header, sizeof header));
    try {
        (void)decoder.next();
        FAIL() << "expected serialization_error";
    } catch (const serialization_error& e) {
        EXPECT_EQ(e.byte_offset(), 4u); // the length field itself
    }
}

TEST(SvcFrameDecoder, LargePayloadWithinTheCapSurvivesCompaction) {
    // Many small frames followed by a large one exercises the lazy
    // buffer compaction path (head_ slides past 4096).
    std::vector<store::record> sent;
    for (int i = 0; i < 600; ++i) {
        sent.push_back(svc::encode(svc::progress_frame{
            static_cast<std::uint64_t>(i) + 1, 0, 1}));
    }
    store::record big;
    big.type = store::record_type::svc_result;
    big.payload.assign(100000, 0xAB);
    {
        // Re-encode as a proper result frame so decode sanity holds.
        store::record inner;
        inner.type = store::record_type::screening_report;
        inner.payload.assign(100000, 0xAB);
        svc::result_frame f;
        f.request = 1;
        f.unit = 0;
        f.record = inner;
        big = svc::encode(f);
    }
    sent.push_back(big);
    const auto bytes = wire_concat(sent);

    frame_decoder decoder;
    std::size_t fed = 0;
    std::size_t got = 0;
    while (fed < bytes.size()) {
        const std::size_t chunk = std::min<std::size_t>(777, bytes.size() - fed);
        decoder.feed(std::span<const std::uint8_t>(bytes.data() + fed, chunk));
        fed += chunk;
        while (auto r = decoder.next()) {
            ++got;
            if (got == sent.size()) {
                EXPECT_EQ(r->payload, big.payload);
            }
        }
    }
    EXPECT_EQ(got, sent.size());
    EXPECT_EQ(decoder.offset(), bytes.size());
}

} // namespace
