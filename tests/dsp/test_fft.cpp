#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "dsp/fft.hpp"

namespace {

using namespace bistna;
using dsp::cplx;

TEST(Fft, MatchesReferenceDftOnRandomData) {
    rng generator(5);
    std::vector<cplx> data(256);
    for (auto& x : data) {
        x = cplx(generator.uniform(-1, 1), generator.uniform(-1, 1));
    }
    auto fast = data;
    dsp::fft_inplace(fast);
    const auto slow = dsp::dft_reference(data);
    for (std::size_t k = 0; k < data.size(); ++k) {
        EXPECT_NEAR(std::abs(fast[k] - slow[k]), 0.0, 1e-9) << "bin " << k;
    }
}

TEST(Fft, SingleToneLandsInOneBin) {
    const std::size_t n = 1024;
    std::vector<cplx> data(n);
    const std::size_t bin = 37;
    for (std::size_t i = 0; i < n; ++i) {
        data[i] = std::cos(two_pi * static_cast<double>(bin * i) / static_cast<double>(n));
    }
    dsp::fft_inplace(data);
    EXPECT_NEAR(std::abs(data[bin]), static_cast<double>(n) / 2.0, 1e-6);
    EXPECT_NEAR(std::abs(data[bin + 1]), 0.0, 1e-6);
}

TEST(Fft, InverseRecoversInput) {
    rng generator(6);
    std::vector<cplx> data(128);
    for (auto& x : data) {
        x = cplx(generator.uniform(-1, 1), generator.uniform(-1, 1));
    }
    auto transformed = data;
    dsp::fft_inplace(transformed);
    dsp::ifft_inplace(transformed);
    for (std::size_t i = 0; i < data.size(); ++i) {
        EXPECT_NEAR(std::abs(transformed[i] - data[i]), 0.0, 1e-12);
    }
}

TEST(Fft, ParsevalHolds) {
    rng generator(7);
    std::vector<cplx> data(512);
    double time_energy = 0.0;
    for (auto& x : data) {
        x = cplx(generator.uniform(-1, 1), 0.0);
        time_energy += std::norm(x);
    }
    auto spec = data;
    dsp::fft_inplace(spec);
    double freq_energy = 0.0;
    for (const auto& x : spec) {
        freq_energy += std::norm(x);
    }
    EXPECT_NEAR(freq_energy / static_cast<double>(data.size()), time_energy, 1e-9);
}

TEST(Fft, NonPowerOfTwoThrows) {
    std::vector<cplx> data(96);
    EXPECT_THROW(dsp::fft_inplace(data), precondition_error);
}

TEST(Rfft, HalfSpectrumOfRealSignal) {
    const std::size_t n = 256;
    std::vector<double> data(n);
    for (std::size_t i = 0; i < n; ++i) {
        data[i] = std::sin(two_pi * 10.0 * static_cast<double>(i) / static_cast<double>(n));
    }
    const auto bins = dsp::rfft(data);
    EXPECT_EQ(bins.size(), n / 2 + 1);
    EXPECT_NEAR(std::abs(bins[10]), static_cast<double>(n) / 2.0, 1e-9);
}

} // namespace
