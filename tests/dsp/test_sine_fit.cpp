#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "dsp/sine_fit.hpp"

namespace {

using namespace bistna;

std::vector<double> make_wave(double amplitude, double f_hz, double fs, std::size_t n,
                              double phase, double offset) {
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i) {
        x[i] = offset + amplitude * std::cos(two_pi * f_hz * static_cast<double>(i) / fs + phase);
    }
    return x;
}

TEST(SineFit3, ExactRecoveryOnCleanData) {
    const auto wave = make_wave(0.6, 1000.0, 96000.0, 960, 0.8, 0.05);
    const auto fit = dsp::sine_fit_3param(wave, 1000.0, 96000.0);
    EXPECT_NEAR(fit.amplitude, 0.6, 1e-12);
    EXPECT_NEAR(fit.phase_rad, 0.8, 1e-12);
    EXPECT_NEAR(fit.offset, 0.05, 1e-12);
    EXPECT_NEAR(fit.rms_residual, 0.0, 1e-12);
}

TEST(SineFit3, RobustToNoise) {
    rng generator(3);
    auto wave = make_wave(0.5, 800.0, 48000.0, 4800, -1.2, 0.0);
    for (auto& x : wave) {
        x += generator.gaussian(0.0, 0.01);
    }
    const auto fit = dsp::sine_fit_3param(wave, 800.0, 48000.0);
    EXPECT_NEAR(fit.amplitude, 0.5, 2e-3);
    EXPECT_NEAR(fit.phase_rad, -1.2, 5e-3);
    EXPECT_NEAR(fit.rms_residual, 0.01, 2e-3);
}

TEST(SineFit4, RefinesWrongFrequencyGuess) {
    const double f_true = 1003.7;
    const auto wave = make_wave(0.4, f_true, 96000.0, 9600, 0.2, 0.0);
    const auto fit = dsp::sine_fit_4param(wave, 980.0, 96000.0);
    EXPECT_NEAR(fit.frequency_hz, f_true, 0.01);
    EXPECT_NEAR(fit.amplitude, 0.4, 1e-4);
}

TEST(SineFit4, ConvergesFromBothSides) {
    const double f_true = 62500.0;
    const double fs = 1e6;
    const auto wave = make_wave(0.3, f_true, fs, 16000, 1.0, 0.0);
    for (double guess : {60000.0, 65000.0}) {
        const auto fit = dsp::sine_fit_4param(wave, guess, fs);
        EXPECT_NEAR(fit.frequency_hz, f_true, 1.0) << "guess " << guess;
    }
}

TEST(SineFit, PreconditionsEnforced) {
    EXPECT_THROW((void)dsp::sine_fit_3param({1.0, 2.0}, 100.0, 1000.0), precondition_error);
    const auto wave = make_wave(1.0, 100.0, 1000.0, 100, 0.0, 0.0);
    EXPECT_THROW((void)dsp::sine_fit_3param(wave, -5.0, 1000.0), precondition_error);
}

} // namespace
