#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"
#include "dsp/goertzel.hpp"

namespace {

using namespace bistna;

std::vector<double> cosine(double amplitude, double f_norm, std::size_t n, double phase) {
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i) {
        x[i] = amplitude * std::cos(two_pi * f_norm * static_cast<double>(i) + phase);
    }
    return x;
}

TEST(Goertzel, AmplitudeAndPhaseOfCoherentTone) {
    const auto record = cosine(0.4, 5.0 / 96.0, 96 * 50, 0.9);
    const auto est = dsp::estimate_tone(record, 5.0 / 96.0, 1.0);
    EXPECT_NEAR(est.amplitude, 0.4, 1e-9);
    EXPECT_NEAR(est.phase_rad, 0.9, 1e-9);
}

TEST(Goertzel, SineHasMinusHalfPiPhase) {
    std::vector<double> record(96 * 50);
    for (std::size_t i = 0; i < record.size(); ++i) {
        record[i] = std::sin(two_pi * static_cast<double>(i) / 96.0);
    }
    const auto est = dsp::estimate_tone(record, 1.0 / 96.0, 1.0);
    EXPECT_NEAR(est.phase_rad, -half_pi, 1e-9);
}

TEST(Goertzel, RejectsOtherCoherentTones) {
    const auto record = cosine(1.0, 3.0 / 96.0, 96 * 40, 0.0);
    const auto est = dsp::estimate_tone(record, 7.0 / 96.0, 1.0);
    EXPECT_NEAR(est.amplitude, 0.0, 1e-9);
}

TEST(Goertzel, MultitoneSeparation) {
    std::vector<double> record(96 * 100);
    for (std::size_t i = 0; i < record.size(); ++i) {
        const double t = static_cast<double>(i);
        record[i] = 0.2 * std::sin(two_pi * t / 96.0) + 0.02 * std::sin(2.0 * two_pi * t / 96.0) +
                    0.002 * std::sin(3.0 * two_pi * t / 96.0);
    }
    EXPECT_NEAR(dsp::estimate_tone(record, 1.0 / 96.0, 1.0).amplitude, 0.2, 1e-9);
    EXPECT_NEAR(dsp::estimate_tone(record, 2.0 / 96.0, 1.0).amplitude, 0.02, 1e-9);
    EXPECT_NEAR(dsp::estimate_tone(record, 3.0 / 96.0, 1.0).amplitude, 0.002, 1e-9);
}

TEST(Goertzel, MatchesDirectCorrelationOnNonBinFrequency) {
    // Generalized Goertzel at an arbitrary (non-bin) frequency.
    const double f = 0.0731;
    const std::size_t n = 4096;
    const auto record = cosine(0.7, f, n, 0.3);
    const auto y = dsp::goertzel(record, f, 1.0);
    std::complex<double> direct(0.0, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const double angle = -two_pi * f * static_cast<double>(i);
        direct += record[i] * std::complex<double>(std::cos(angle), std::sin(angle));
    }
    direct *= 2.0 / static_cast<double>(n);
    EXPECT_NEAR(std::abs(y - direct), 0.0, 1e-9);
}

TEST(Goertzel, EmptyRecordThrows) {
    EXPECT_THROW((void)dsp::goertzel({}, 0.1, 1.0), precondition_error);
}

} // namespace
