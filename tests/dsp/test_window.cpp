#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/window.hpp"

namespace {

using namespace bistna::dsp;

TEST(Window, RectangularIsAllOnes) {
    const auto w = make_window(window_kind::rectangular, 64);
    for (double x : w) {
        EXPECT_DOUBLE_EQ(x, 1.0);
    }
    EXPECT_DOUBLE_EQ(coherent_gain(w), 1.0);
    EXPECT_DOUBLE_EQ(enbw_bins(w), 1.0);
}

TEST(Window, HannProperties) {
    const auto w = make_window(window_kind::hann, 1024);
    EXPECT_NEAR(coherent_gain(w), 0.5, 1e-3);
    EXPECT_NEAR(enbw_bins(w), 1.5, 1e-2);
    EXPECT_NEAR(w[0], 0.0, 1e-12); // periodic Hann starts at zero
}

TEST(Window, BlackmanHarrisProperties) {
    const auto w = make_window(window_kind::blackman_harris, 1024);
    EXPECT_NEAR(coherent_gain(w), 0.35875, 1e-3);
    EXPECT_NEAR(enbw_bins(w), 2.0, 0.05);
}

TEST(Window, FlattopCoherentGain) {
    const auto w = make_window(window_kind::flattop, 1024);
    EXPECT_NEAR(coherent_gain(w), 0.2156, 1e-3);
}

TEST(Window, AllKindsNonNegativePeakNearOne) {
    for (auto kind : {window_kind::rectangular, window_kind::hann, window_kind::hamming,
                      window_kind::blackman_harris}) {
        const auto w = make_window(kind, 257);
        double peak = 0.0;
        for (double x : w) {
            peak = std::max(peak, x);
            EXPECT_GE(x, -1e-6) << to_string(kind);
        }
        EXPECT_NEAR(peak, 1.0, 0.01) << to_string(kind);
    }
}

TEST(Window, LeakageHalfwidthOrdering) {
    EXPECT_LT(leakage_halfwidth_bins(window_kind::rectangular),
              leakage_halfwidth_bins(window_kind::hann));
    EXPECT_LT(leakage_halfwidth_bins(window_kind::hann),
              leakage_halfwidth_bins(window_kind::blackman_harris));
}

TEST(Window, ZeroLengthThrows) {
    EXPECT_THROW((void)make_window(window_kind::hann, 0), bistna::precondition_error);
}

} // namespace
