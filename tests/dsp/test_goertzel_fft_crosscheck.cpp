// Cross-check of the two single-tone readout paths: the Goertzel
// correlation and the radix-2 FFT must agree on bin magnitude and phase to
// 1e-9 on quantized-sine records (the generator's 16-step sequence and an
// amplitude-quantized ADC-style sine).  Both are compared in the tone
// amplitude scale (2/N normalization), the scale measurements are quoted in.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "common/math_util.hpp"
#include "dsp/fft.hpp"
#include "dsp/goertzel.hpp"
#include "gen/quantized_sine.hpp"

namespace {

using namespace bistna;

constexpr double kTol = 1e-9;

/// FFT bin k rescaled to tone amplitude: (2/N) * X[k], the same scale
/// dsp::goertzel reports.
std::complex<double> fft_tone(const std::vector<std::complex<double>>& spectrum,
                              std::size_t samples, std::size_t k) {
    return spectrum[k] * (2.0 / static_cast<double>(samples));
}

/// Goertzel of integer bin k on an N-sample record (fs chosen for 1 Hz
/// bin spacing).
std::complex<double> goertzel_tone(const std::vector<double>& record, std::size_t k) {
    return dsp::goertzel(record, static_cast<double>(k),
                         static_cast<double>(record.size()));
}

/// The generator's quantized 16-step sine (paper Fig. 2c), repeated.
std::vector<double> generator_record(std::size_t samples, double amplitude, double dc) {
    std::vector<double> record(samples);
    for (std::size_t n = 0; n < samples; ++n) {
        record[n] = dc + amplitude * gen::control_sequencer::ideal_step_value(n);
    }
    return record;
}

/// A sine amplitude-quantized to `bits` (mid-tread ADC model).
std::vector<double> quantized_sine_record(std::size_t samples, std::size_t cycles,
                                          double amplitude, double phase,
                                          unsigned bits) {
    const double step = amplitude / static_cast<double>(1u << (bits - 1));
    std::vector<double> record(samples);
    for (std::size_t n = 0; n < samples; ++n) {
        const double x = amplitude * std::sin(two_pi * static_cast<double>(cycles) *
                                                  static_cast<double>(n) /
                                                  static_cast<double>(samples) +
                                              phase);
        record[n] = step * std::round(x / step);
    }
    return record;
}

void expect_tone_agreement(const std::vector<double>& record, std::size_t bin) {
    const auto spectrum = dsp::rfft(record);
    const auto direct = goertzel_tone(record, bin);
    const auto via_fft = fft_tone(spectrum, record.size(), bin);
    EXPECT_NEAR(std::abs(direct), std::abs(via_fft), kTol) << "bin " << bin << " magnitude";
    // Compare phases through the complex difference first, so bins at the
    // numerical noise floor (phase meaningless) cannot false-alarm ...
    EXPECT_NEAR(std::abs(direct - via_fft), 0.0, kTol) << "bin " << bin << " complex";
    // ... and directly where the tone is strong enough to carry phase.
    if (std::abs(via_fft) > 1e-6) {
        EXPECT_NEAR(wrap_phase(std::arg(direct) - std::arg(via_fft)), 0.0, kTol)
            << "bin " << bin << " phase";
    }
}

TEST(GoertzelFftCrosscheck, GeneratorStaircaseRecord) {
    // 4096 samples of the 16-step generator sequence: 256 full cycles, an
    // exact discrete sine at bin 256 by construction.
    const auto record = generator_record(4096, 0.3, 0.0);
    for (std::size_t k = 1; k <= 16; ++k) {
        expect_tone_agreement(record, k); // empty low bins must agree on ~0 too
    }
    expect_tone_agreement(record, 256);

    // The fundamental recovers the programmed amplitude on both paths.
    const auto spectrum = dsp::rfft(record);
    EXPECT_NEAR(std::abs(goertzel_tone(record, 256)), 0.3, kTol);
    EXPECT_NEAR(std::abs(fft_tone(spectrum, record.size(), 256)), 0.3, kTol);
}

TEST(GoertzelFftCrosscheck, QuantizedSineManyBits) {
    const auto record = quantized_sine_record(2048, 64, 0.5, 0.7, 12);
    for (std::size_t k = 1; k <= 8; ++k) {
        expect_tone_agreement(record, k);
    }
    expect_tone_agreement(record, 64);

    // Phase convention check: goertzel reports the cosine-referenced phase
    // of A sin(wt + p) = A cos(wt + p - pi/2).
    const auto direct = goertzel_tone(record, 64);
    EXPECT_NEAR(wrap_phase(std::arg(direct) - (0.7 - half_pi)), 0.0, 1e-4);
}

TEST(GoertzelFftCrosscheck, CoarseQuantizationStillAgrees) {
    // 4-bit quantization produces strong harmonics; the two readouts must
    // still agree bin-for-bin because they compute the same DFT.
    const auto record = quantized_sine_record(1024, 8, 0.4, -1.1, 4);
    const auto spectrum = dsp::rfft(record);
    for (std::size_t k = 1; k < spectrum.size() - 1; k += 37) {
        const auto direct = goertzel_tone(record, k);
        const auto via_fft = fft_tone(spectrum, record.size(), k);
        EXPECT_NEAR(std::abs(direct - via_fft), 0.0, kTol) << "bin " << k;
    }
}

TEST(GoertzelFftCrosscheck, DcOffsetDoesNotLeakIntoTheFundamental) {
    const auto record = generator_record(4096, 0.25, 0.1);
    expect_tone_agreement(record, 256);
    EXPECT_NEAR(std::abs(goertzel_tone(record, 256)), 0.25, kTol);
}

} // namespace
