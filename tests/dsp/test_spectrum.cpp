#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "dsp/spectrum.hpp"

namespace {

using namespace bistna;
using dsp::window_kind;

std::vector<double> tone(double amplitude, double f, double fs, std::size_t n,
                         double phase = 0.0) {
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i) {
        x[i] = amplitude * std::sin(two_pi * f * static_cast<double>(i) / fs + phase);
    }
    return x;
}

TEST(Spectrum, AmplitudeCalibratedForCoherentTone) {
    const double fs = 96000.0;
    const std::size_t n = 4096;
    // Put the tone exactly on a bin for the rectangular window.
    const double f = 24.0 * fs / static_cast<double>(n);
    const auto record = tone(0.5, f, fs, n);
    const auto spec = dsp::compute_spectrum(record, fs, window_kind::rectangular);
    const auto peak = dsp::find_peak(spec, 1, spec.bins() - 1);
    EXPECT_NEAR(peak.frequency_hz, f, spec.bin_hz / 2);
    EXPECT_NEAR(peak.amplitude, 0.5, 5e-3);
}

TEST(Spectrum, WindowedToneAmplitudeRecovered) {
    const double fs = 96000.0;
    const std::size_t n = 8192;
    const double f = 1234.5; // non-coherent on purpose
    const auto record = tone(0.3, f, fs, n);
    const auto spec = dsp::compute_spectrum(record, fs, window_kind::blackman_harris);
    const auto measured = dsp::measure_tone(spec, f);
    EXPECT_NEAR(measured.amplitude, 0.3, 0.01);
}

TEST(Spectrum, TwoToneSfdr) {
    const double fs = 96000.0;
    const std::size_t n = 16384;
    auto record = tone(1.0, 6000.0, fs, n);
    const auto spur = tone(0.001, 25000.0, fs, n, 0.8);
    for (std::size_t i = 0; i < n; ++i) {
        record[i] += spur[i];
    }
    const auto metrics = dsp::analyze_tone(record, fs, 6000.0);
    EXPECT_NEAR(metrics.sfdr_db, 60.0, 1.5);
}

TEST(Spectrum, ThdOfConstructedDistortion) {
    const double fs = 96000.0;
    const std::size_t n = 16384;
    auto record = tone(1.0, 3000.0, fs, n);
    const auto h2 = tone(0.01, 6000.0, fs, n, 1.0);
    const auto h3 = tone(0.003, 9000.0, fs, n, 2.0);
    for (std::size_t i = 0; i < n; ++i) {
        record[i] += h2[i] + h3[i];
    }
    const auto metrics = dsp::analyze_tone(record, fs, 3000.0);
    const double expected = 20.0 * std::log10(std::hypot(0.01, 0.003));
    EXPECT_NEAR(metrics.thd_db, expected, 0.5);
    ASSERT_GE(metrics.harmonic_amplitudes.size(), 2u);
    EXPECT_NEAR(metrics.harmonic_amplitudes[0], 0.01, 1e-3);
    EXPECT_NEAR(metrics.harmonic_amplitudes[1], 0.003, 5e-4);
}

TEST(Spectrum, SnrOfNoisyTone) {
    const double fs = 96000.0;
    const std::size_t n = 32768;
    rng generator(17);
    auto record = tone(1.0, 5000.0, fs, n);
    const double noise_rms = 1e-3;
    for (auto& x : record) {
        x += generator.gaussian(0.0, noise_rms);
    }
    const auto metrics = dsp::analyze_tone(record, fs, 5000.0);
    // SNR = 20 log10( (1/sqrt(2)) / 1e-3 ) ~ 57 dB.
    EXPECT_NEAR(metrics.snr_db, 57.0, 2.0);
    EXPECT_NEAR(metrics.enob_bits, (metrics.sinad_db - 1.76) / 6.02, 1e-9);
}

TEST(Spectrum, AliasedHarmonicsAreFoldedIntoBand) {
    const double fs = 96000.0;
    const std::size_t n = 8192;
    // Fundamental at 30 kHz: H2 = 60 kHz aliases to 36 kHz.
    auto record = tone(1.0, 30000.0, fs, n);
    const auto h2 = tone(0.01, 36000.0, fs, n, 0.5); // pre-folded image
    for (std::size_t i = 0; i < n; ++i) {
        record[i] += h2[i];
    }
    const auto metrics = dsp::analyze_tone(record, fs, 30000.0, 2);
    ASSERT_EQ(metrics.harmonic_amplitudes.size(), 1u);
    EXPECT_NEAR(metrics.harmonic_amplitudes[0], 0.01, 2e-3);
}

TEST(Spectrum, TooShortRecordThrows) {
    EXPECT_THROW((void)dsp::compute_spectrum({1.0, 2.0}, 1000.0), precondition_error);
}

} // namespace
