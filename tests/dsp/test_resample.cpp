#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"
#include "dsp/resample.hpp"
#include "dsp/spectrum.hpp"

namespace {

using namespace bistna;

TEST(Resample, ZohRepeatsSamples) {
    const auto out = dsp::zoh_upsample({1.0, 2.0, 3.0}, 3);
    const std::vector<double> expected = {1, 1, 1, 2, 2, 2, 3, 3, 3};
    ASSERT_EQ(out.size(), expected.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_DOUBLE_EQ(out[i], expected[i]);
    }
}

TEST(Resample, LinearInterpolates) {
    const auto out = dsp::linear_upsample({0.0, 2.0}, 4);
    ASSERT_EQ(out.size(), 5u);
    EXPECT_DOUBLE_EQ(out[1], 0.5);
    EXPECT_DOUBLE_EQ(out[2], 1.0);
    EXPECT_DOUBLE_EQ(out[4], 2.0);
}

TEST(Resample, DecimatePhase) {
    const auto out = dsp::decimate({0, 1, 2, 3, 4, 5, 6, 7}, 3, 1);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_DOUBLE_EQ(out[0], 1.0);
    EXPECT_DOUBLE_EQ(out[1], 4.0);
    EXPECT_DOUBLE_EQ(out[2], 7.0);
    EXPECT_THROW((void)dsp::decimate({1.0}, 2, 2), precondition_error);
}

TEST(Resample, ZohUpsamplingExposesImages) {
    // DT sine at fs/16; ZOH x8 moves us to a grid where the images at
    // 15 f0 and 17 f0 appear with ~sinc attenuation -- the paper's
    // "continuous-time analysis of a sampled signal" effect (Fig. 8b).
    const std::size_t n = 2048;
    std::vector<double> dt(n);
    for (std::size_t i = 0; i < n; ++i) {
        dt[i] = std::sin(two_pi * static_cast<double>(i) / 16.0);
    }
    const std::size_t factor = 8;
    const auto ct = dsp::zoh_upsample(dt, factor);
    const double fs_ct = static_cast<double>(factor); // normalize fs_dt = 1
    const auto spec = dsp::compute_spectrum(ct, fs_ct, dsp::window_kind::blackman_harris);
    const double f0 = 1.0 / 16.0;
    const auto fund = dsp::measure_tone(spec, f0);
    const auto image = dsp::measure_tone(spec, 1.0 - f0); // 15 f0
    const double image_db = 20.0 * std::log10(image.amplitude / fund.amplitude);
    // Ideal ZOH image level: sinc(15/16)/sinc(1/16) = 1/15 -> -23.5 dB.
    EXPECT_NEAR(image_db, -23.5, 1.0);
}

} // namespace
