// CIC decimator: DC normalization, sinc^R response, bitstream decoding.
#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"
#include "dsp/cic.hpp"
#include "dsp/goertzel.hpp"
#include "sd/modulator.hpp"

namespace {

using namespace bistna;
using dsp::cic_decimator;

TEST(Cic, DcPassesAtUnityGain) {
    cic_decimator cic(3, 16);
    std::vector<double> input(16 * 20, 0.42);
    const auto out = cic.process(input);
    ASSERT_EQ(out.size(), 20u);
    // After the pipeline fills (order * factor samples), DC is exact.
    EXPECT_NEAR(out.back(), 0.42, 1e-12);
}

TEST(Cic, OutputRateIsInputOverFactor) {
    cic_decimator cic(2, 8);
    const auto out = cic.process(std::vector<double>(801, 1.0));
    EXPECT_EQ(out.size(), 100u);
}

TEST(Cic, MagnitudeResponseIsSincPower) {
    cic_decimator cic(3, 16);
    EXPECT_NEAR(cic.magnitude(0.0), 1.0, 1e-12);
    // Nulls at multiples of 1/factor.
    EXPECT_NEAR(cic.magnitude(1.0 / 16.0), 0.0, 1e-12);
    EXPECT_NEAR(cic.magnitude(2.0 / 16.0), 0.0, 1e-12);
    // Closed form check at an arbitrary frequency.
    const double f = 0.013;
    const double expected =
        std::pow(std::abs(std::sin(pi * f * 16.0) / (16.0 * std::sin(pi * f))), 3.0);
    EXPECT_NEAR(cic.magnitude(f), expected, 1e-12);
}

TEST(Cic, AttenuatesToneMatchingTheory) {
    const double f = 0.03; // cycles per input sample
    cic_decimator cic(2, 8);
    std::vector<double> input(8000);
    for (std::size_t n = 0; n < input.size(); ++n) {
        input[n] = std::sin(two_pi * f * static_cast<double>(n));
    }
    const auto out = cic.process(input);
    // Tone at output rate: frequency f*8 cycles/output-sample; measure it.
    const std::vector<double> tail(out.end() - 800, out.end());
    const double amplitude = dsp::estimate_tone(tail, f * 8.0, 1.0).amplitude;
    EXPECT_NEAR(amplitude, cic.magnitude(f), 0.02);
}

TEST(Cic, DecodesSigmaDeltaBitstream) {
    // The integrated-DSP use case: decimate the modulator bitstream and
    // recover the slow input tone.
    sd::sd_modulator mod(sd::modulator_params::ideal());
    const double vref = mod.params().vref;
    cic_decimator cic(3, 24);
    std::vector<double> decoded;
    const double f = 1.0 / 960.0; // very slow tone
    for (std::size_t n = 0; n < 9600 * 4; ++n) {
        const double x = 0.3 * std::sin(two_pi * f * static_cast<double>(n));
        const int bit = mod.step(x, true);
        if (cic.push(static_cast<double>(bit) * vref)) {
            decoded.push_back(cic.output());
        }
    }
    // Measure the decoded tone amplitude (output rate = input/24).
    const std::vector<double> tail(decoded.end() - 800, decoded.end());
    const double amplitude = dsp::estimate_tone(tail, f * 24.0, 1.0).amplitude;
    EXPECT_NEAR(amplitude, 0.3 * cic.magnitude(f), 0.01);
}

TEST(Cic, ResetClearsPipeline) {
    cic_decimator cic(2, 4);
    cic.process(std::vector<double>(100, 1.0));
    cic.reset();
    const auto out = cic.process(std::vector<double>(4, 0.0));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_DOUBLE_EQ(out[0], 0.0);
}

TEST(Cic, Validation) {
    EXPECT_THROW(cic_decimator(0, 8), precondition_error);
    EXPECT_THROW(cic_decimator(9, 8), precondition_error);
    EXPECT_THROW(cic_decimator(2, 1), precondition_error);
}

} // namespace
