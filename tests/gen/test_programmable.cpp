// Programmable-waveform generator extension: pattern construction,
// hardware-cost accounting, spectral behaviour vs step count, two-tone.
#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"
#include "dsp/goertzel.hpp"
#include "gen/programmable.hpp"

namespace {

using namespace bistna;
using gen::programmable_generator;
using gen::step_pattern;

TEST(StepPattern, QuantizedSineMatchesSamples) {
    const auto pattern = step_pattern::quantized_sine(32);
    EXPECT_EQ(pattern.period(), 32u);
    for (std::size_t n = 0; n < 64; ++n) {
        EXPECT_NEAR(pattern.step_value(n), std::sin(two_pi * static_cast<double>(n) / 32.0),
                    1e-12);
    }
}

TEST(StepPattern, SixteenStepSineNeedsFourCapacitors) {
    // The paper's pattern: 4 distinct magnitudes (CI_1..CI_4).
    const auto pattern = step_pattern::quantized_sine(16);
    EXPECT_EQ(pattern.level_count(), 4u);
    // 32 steps need 8 capacitors: hardware cost scales with resolution.
    EXPECT_EQ(step_pattern::quantized_sine(32).level_count(), 8u);
}

TEST(StepPattern, MismatchPreservesLevelSharing) {
    auto process_params = sim::process_params::ideal();
    process_params.cap_mismatch_sigma = 0.02;
    rng seed(3);
    sim::process_sampler sampler(process_params, seed);
    const auto ideal = step_pattern::quantized_sine(16);
    const auto drawn = ideal.with_mismatch(sampler);
    // Steps sharing a magnitude must share the same drawn capacitor.
    EXPECT_NEAR(drawn.step_value(1), -drawn.step_value(15), 1e-12);
    EXPECT_NEAR(drawn.step_value(2), drawn.step_value(6), 1e-12);
    EXPECT_NE(drawn.step_value(1), ideal.step_value(1));
}

TEST(ProgrammableGenerator, OutputFrequencyFollowsPeriod) {
    for (std::size_t p : {16UL, 32UL}) {
        programmable_generator::params config;
        config.opamp1 = sc::opamp_params::ideal();
        config.opamp2 = sc::opamp_params::ideal();
        config.process = sim::process_params::ideal();
        programmable_generator generator(step_pattern::quantized_sine(p), config);
        generator.set_amplitude(0.15);
        generator.settle(64);
        const auto wave = generator.generate(p * 64);
        const double amplitude =
            dsp::estimate_tone(wave, 1.0 / static_cast<double>(p), 1.0).amplitude;
        EXPECT_NEAR(amplitude, 0.3, 0.02) << "P=" << p; // gain-2 design preserved
    }
}

TEST(ProgrammableGenerator, BiquadRetunedToPatternPeriod) {
    programmable_generator::params config;
    programmable_generator g32(step_pattern::quantized_sine(32), config);
    const auto info = sc::analyze_biquad(g32.caps());
    EXPECT_NEAR(info.pole_angle, two_pi / 32.0, 1e-9);
    EXPECT_NEAR(g32.normalized_output_frequency(), 1.0 / 32.0, 1e-15);
}

TEST(ProgrammableGenerator, TwoTonePatternEmitsBothTones) {
    programmable_generator::params config;
    config.opamp1 = sc::opamp_params::ideal();
    config.opamp2 = sc::opamp_params::ideal();
    config.process = sim::process_params::ideal();
    // Tones at f_gen/32 and 3 f_gen/32, 0.5 ratio before filter shaping.
    programmable_generator generator(step_pattern::two_tone(32, 3, 0.5, 0.4), config);
    generator.set_amplitude(0.2);
    generator.settle(64);
    const auto wave = generator.generate(32 * 64);
    const double a1 = dsp::estimate_tone(wave, 1.0 / 32.0, 1.0).amplitude;
    const double a3 = dsp::estimate_tone(wave, 3.0 / 32.0, 1.0).amplitude;
    EXPECT_GT(a1, 0.05);
    EXPECT_GT(a3, 0.005);
    // The smoothing biquad (peaked at f_gen/32) attenuates the upper tone.
    const double shaping = std::abs(sc::biquad_response(generator.caps(), 3.0 / 32.0)) /
                           std::abs(sc::biquad_response(generator.caps(), 1.0 / 32.0));
    EXPECT_NEAR(a3 / a1, 0.5 * shaping, 0.1 * shaping);
}

TEST(ProgrammableGenerator, FinerQuantizationLowersCloseInImages) {
    // With exact sine samples the in-band harmonics come from mismatch;
    // the ZOH images sit at P -/+ 1 times f_wave, so doubling P pushes
    // them an octave further out -- the motivation for programmability.
    const auto p16 = step_pattern::quantized_sine(16);
    const auto p32 = step_pattern::quantized_sine(32);
    EXPECT_EQ(p16.period() - 1, 15u);
    EXPECT_EQ(p32.period() - 1, 31u);
}

TEST(StepPattern, Validation) {
    EXPECT_THROW(step_pattern::quantized_sine(3), precondition_error);
    EXPECT_THROW(step_pattern::quantized_sine(5), precondition_error);
    EXPECT_THROW(step_pattern::two_tone(32, 20, 0.5, 0.0), precondition_error);
    EXPECT_THROW(step_pattern({1.5, 0.0, -1.5, 0.0}), precondition_error);
}

} // namespace
