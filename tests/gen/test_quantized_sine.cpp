// The control sequencer must reproduce eq. (2): the 16-step pattern is an
// exact sampled sine.
#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"
#include "gen/cap_array.hpp"
#include "gen/quantized_sine.hpp"
#include "sim/process.hpp"

namespace {

using namespace bistna;
using gen::control_sequencer;

TEST(QuantizedSine, StepValuesAreExactSineSamples) {
    for (std::size_t n = 0; n < 32; ++n) {
        const double expected = std::sin(static_cast<double>(n) * pi / 8.0);
        EXPECT_NEAR(control_sequencer::ideal_step_value(n), expected, 1e-15) << "n=" << n;
    }
}

TEST(QuantizedSine, CapIndicesFollowEq2Levels) {
    // CI_k = sin(k pi / 8), selected one at a time (eq. (1)).
    const auto& table = control_sequencer::index_table();
    for (std::size_t n = 0; n < gen::steps_per_period; ++n) {
        const double level = control_sequencer::ideal_level(table[n]);
        EXPECT_NEAR(level, std::abs(std::sin(static_cast<double>(n) * pi / 8.0)), 1e-15);
    }
}

TEST(QuantizedSine, SignFlipsAtHalfPeriod) {
    for (std::size_t n = 0; n < gen::steps_per_period; ++n) {
        EXPECT_EQ(control_sequencer::at(n).negative, n >= 8) << "n=" << n;
    }
}

TEST(QuantizedSine, PatternPeriodicInSixteen) {
    for (std::size_t n = 0; n < 64; ++n) {
        const auto a = control_sequencer::at(n);
        const auto b = control_sequencer::at(n + gen::steps_per_period);
        EXPECT_EQ(a.cap_index, b.cap_index);
        EXPECT_EQ(a.negative, b.negative);
    }
}

TEST(QuantizedSine, LevelIndexOutOfRangeThrows) {
    EXPECT_THROW((void)control_sequencer::ideal_level(5), precondition_error);
}

TEST(CapArray, IdealArrayMatchesIdealLevels) {
    gen::cap_array array;
    for (std::size_t k = 0; k < gen::level_count; ++k) {
        EXPECT_DOUBLE_EQ(array.level(k), control_sequencer::ideal_level(k));
    }
}

TEST(CapArray, MismatchedArrayStaysClose) {
    auto params = sim::process_params::cmos035();
    rng seed(5);
    sim::process_sampler sampler(params, seed);
    gen::cap_array array(sampler);
    for (std::size_t k = 1; k < gen::level_count; ++k) {
        const double ideal = control_sequencer::ideal_level(k);
        EXPECT_NEAR(array.level(k), ideal, 6.0 * params.cap_mismatch_sigma * ideal);
        EXPECT_NE(array.level(k), ideal); // mismatch actually drawn
    }
    EXPECT_DOUBLE_EQ(array.level(0), 0.0);
}

TEST(CapArray, SignedValueFollowsControl) {
    gen::cap_array array;
    const auto pos = gen::generator_control{3, false};
    const auto neg = gen::generator_control{3, true};
    EXPECT_GT(array.value(pos), 0.0);
    EXPECT_DOUBLE_EQ(array.value(pos), -array.value(neg));
}

} // namespace
