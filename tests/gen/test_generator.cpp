// Generator laws from the paper: output frequency f_gen/16 exactly,
// amplitude = 2*(V_A+ - V_A-) (Fig. 8a), startup settling, mismatch ->
// odd-harmonic floor, reproducibility.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/math_util.hpp"
#include "dsp/goertzel.hpp"
#include "dsp/sine_fit.hpp"
#include "gen/generator.hpp"

namespace {

using namespace bistna;
using gen::generator_params;
using gen::sinewave_generator;

std::vector<double> settled_waveform(sinewave_generator& g, std::size_t periods) {
    g.settle(64);
    return g.generate(periods * gen::steps_per_period);
}

TEST(Generator, OutputFrequencyIsSixteenthOfClock) {
    auto params = generator_params::ideal();
    sinewave_generator g(params);
    g.set_amplitude(millivolt(150.0));
    const auto wave = settled_waveform(g, 64);
    // Sample rate 16 "Hz" -> f_wave should come out at exactly 1 Hz; start
    // the 4-parameter fit from a deliberately wrong guess.
    const auto fit = dsp::sine_fit_4param(wave, 0.97, 16.0);
    EXPECT_NEAR(fit.frequency_hz, 1.0, 1e-6);
}

TEST(Generator, AmplitudeFollowsTwoTimesVaDifferential) {
    // Fig. 8a: refs +/-75, +/-125, +/-150 mV (V_A diff 150/250/300 mV)
    // produce 300/500/600 mV outputs.
    for (double va_mv : {150.0, 250.0, 300.0}) {
        auto params = generator_params::ideal();
        sinewave_generator g(params);
        g.set_amplitude(millivolt(va_mv));
        const auto wave = settled_waveform(g, 32);
        const auto tone = dsp::estimate_tone(wave, 1.0 / 16.0, 1.0);
        EXPECT_NEAR(tone.amplitude, 2.0 * va_mv * 1e-3, 0.03 * 2.0 * va_mv * 1e-3)
            << "va = " << va_mv << " mV";
    }
}

TEST(Generator, AmplitudeScalesLinearlyWithProgramming) {
    auto params = generator_params::ideal();
    sinewave_generator g1(params);
    sinewave_generator g2(params);
    g1.set_amplitude(millivolt(100.0));
    g2.set_amplitude(millivolt(200.0));
    const auto w1 = settled_waveform(g1, 16);
    const auto w2 = settled_waveform(g2, 16);
    const double a1 = dsp::estimate_tone(w1, 1.0 / 16.0, 1.0).amplitude;
    const double a2 = dsp::estimate_tone(w2, 1.0 / 16.0, 1.0).amplitude;
    EXPECT_NEAR(a2 / a1, 2.0, 1e-6);
}

TEST(Generator, IdealGeneratorHasVanishingInBandHarmonics) {
    auto params = generator_params::ideal();
    sinewave_generator g(params);
    g.set_amplitude(millivolt(250.0));
    const auto wave = settled_waveform(g, 64);
    const double fundamental = dsp::estimate_tone(wave, 1.0 / 16.0, 1.0).amplitude;
    for (int h = 2; h <= 5; ++h) {
        const double harmonic =
            dsp::estimate_tone(wave, static_cast<double>(h) / 16.0, 1.0).amplitude;
        // Exact sine input + linear filter: harmonics at numerical noise.
        EXPECT_LT(harmonic / fundamental, 1e-9) << "harmonic " << h;
    }
}

TEST(Generator, CapacitorMismatchCreatesOnlyOddHarmonics) {
    auto params = generator_params::ideal();
    params.process.cap_mismatch_sigma = 0.01; // exaggerated 1 % mismatch
    params.seed = 77;
    sinewave_generator g(params);
    g.set_amplitude(millivolt(250.0));
    const auto wave = settled_waveform(g, 128);
    const double fundamental = dsp::estimate_tone(wave, 1.0 / 16.0, 1.0).amplitude;
    const double h2 = dsp::estimate_tone(wave, 2.0 / 16.0, 1.0).amplitude;
    const double h3 = dsp::estimate_tone(wave, 3.0 / 16.0, 1.0).amplitude;
    const double h5 = dsp::estimate_tone(wave, 5.0 / 16.0, 1.0).amplitude;
    // Mirror symmetry of the capacitor reuse (cap_array.hpp): even
    // harmonics stay at numerical noise, odd ones carry the mismatch.
    EXPECT_LT(h2 / fundamental, 1e-9);
    EXPECT_GT(std::max(h3, h5) / fundamental, 1e-6);
}

TEST(Generator, SameSeedSameWaveform) {
    generator_params params; // full non-ideal defaults
    params.seed = 2024;
    sinewave_generator a(params);
    sinewave_generator b(params);
    a.set_amplitude(millivolt(150.0));
    b.set_amplitude(millivolt(150.0));
    const auto wa = a.generate(256);
    const auto wb = b.generate(256);
    for (std::size_t i = 0; i < wa.size(); ++i) {
        ASSERT_DOUBLE_EQ(wa[i], wb[i]) << "diverged at sample " << i;
    }
}

TEST(Generator, ResetRestoresPhaseZero) {
    auto params = generator_params::ideal();
    sinewave_generator g(params);
    g.set_amplitude(millivolt(150.0));
    const auto first = g.generate(64);
    g.reset();
    const auto second = g.generate(64);
    for (std::size_t i = 0; i < first.size(); ++i) {
        ASSERT_DOUBLE_EQ(first[i], second[i]);
    }
}

TEST(Generator, ExpectedAmplitudeMatchesMeasured) {
    auto params = generator_params::ideal();
    sinewave_generator g(params);
    g.set_amplitude(millivolt(200.0));
    const auto wave = settled_waveform(g, 32);
    const double measured = dsp::estimate_tone(wave, 1.0 / 16.0, 1.0).amplitude;
    EXPECT_NEAR(g.expected_amplitude(), measured, 0.03 * measured);
}

TEST(Generator, DrawnInstanceComesFromOneSamplerPass) {
    // Regression for the constructor drawing the process instance twice:
    // replaying a *single* sampler pass (biquad caps a,b,c,d,f, then the
    // input array) must reproduce both drawn_caps() and array() exactly.
    generator_params params;
    params.process.cap_mismatch_sigma = 0.01;
    params.seed = 1234;
    sinewave_generator g(params);

    sim::process_sampler replay(params.process,
                                rng(sinewave_generator::process_stream_seed(params.seed)));
    sc::biquad_caps expected = params.caps;
    expected.a = replay.matched_capacitor(expected.a);
    expected.b = replay.matched_capacitor(expected.b);
    expected.c = replay.matched_capacitor(expected.c);
    expected.d = replay.matched_capacitor(expected.d);
    expected.f = replay.matched_capacitor(expected.f);
    const gen::cap_array expected_array(replay);

    EXPECT_EQ(g.drawn_caps().a, expected.a);
    EXPECT_EQ(g.drawn_caps().b, expected.b);
    EXPECT_EQ(g.drawn_caps().c, expected.c);
    EXPECT_EQ(g.drawn_caps().d, expected.d);
    EXPECT_EQ(g.drawn_caps().f, expected.f);
    for (std::size_t k = 0; k < gen::level_count; ++k) {
        EXPECT_EQ(g.array().level(k), expected_array.level(k)) << "level " << k;
    }
}

TEST(Generator, ProcessAndNoiseStreamsAreIndependent) {
    // Regression for the op-amp noise RNG being seeded with the same child
    // stream as the process draw (perfectly correlated mismatch and noise).
    const std::uint64_t seed = 2024;
    ASSERT_NE(sinewave_generator::process_stream_seed(seed),
              sinewave_generator::noise_stream_seed(seed));
    rng process_stream(sinewave_generator::process_stream_seed(seed));
    rng noise_stream(sinewave_generator::noise_stream_seed(seed));
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        equal += process_stream.next_u64() == noise_stream.next_u64();
    }
    EXPECT_LT(equal, 2);
}

TEST(Generator, ExpectedAmplitudeTracksHeavilyMismatchedDraw) {
    // A linear (ideal op-amp) instance with exaggerated 5 % capacitor
    // mismatch: the prediction from the *drawn* caps and array must track
    // the measured fundamental closely, while the design-nominal prediction
    // visibly misses for at least one draw.
    double worst_nominal_error = 0.0;
    for (std::uint64_t seed : {3u, 11u, 29u, 55u}) {
        auto params = generator_params::ideal();
        params.process.cap_mismatch_sigma = 0.05;
        params.seed = seed;
        sinewave_generator g(params);
        g.set_amplitude(millivolt(200.0));
        const auto wave = settled_waveform(g, 64);
        const double measured = dsp::estimate_tone(wave, 1.0 / 16.0, 1.0).amplitude;

        EXPECT_NEAR(g.expected_amplitude(), measured, 2e-3 * measured) << "seed " << seed;

        const double nominal =
            std::abs(sc::biquad_response(params.caps, 1.0 / 16.0)) * 0.2;
        worst_nominal_error =
            std::max(worst_nominal_error, std::abs(nominal - measured) / measured);
    }
    EXPECT_GT(worst_nominal_error, 5e-3);
}

} // namespace
