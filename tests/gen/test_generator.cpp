// Generator laws from the paper: output frequency f_gen/16 exactly,
// amplitude = 2*(V_A+ - V_A-) (Fig. 8a), startup settling, mismatch ->
// odd-harmonic floor, reproducibility.
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"
#include "dsp/goertzel.hpp"
#include "dsp/sine_fit.hpp"
#include "gen/generator.hpp"

namespace {

using namespace bistna;
using gen::generator_params;
using gen::sinewave_generator;

std::vector<double> settled_waveform(sinewave_generator& g, std::size_t periods) {
    g.settle(64);
    return g.generate(periods * gen::steps_per_period);
}

TEST(Generator, OutputFrequencyIsSixteenthOfClock) {
    auto params = generator_params::ideal();
    sinewave_generator g(params);
    g.set_amplitude(millivolt(150.0));
    const auto wave = settled_waveform(g, 64);
    // Sample rate 16 "Hz" -> f_wave should come out at exactly 1 Hz; start
    // the 4-parameter fit from a deliberately wrong guess.
    const auto fit = dsp::sine_fit_4param(wave, 0.97, 16.0);
    EXPECT_NEAR(fit.frequency_hz, 1.0, 1e-6);
}

TEST(Generator, AmplitudeFollowsTwoTimesVaDifferential) {
    // Fig. 8a: refs +/-75, +/-125, +/-150 mV (V_A diff 150/250/300 mV)
    // produce 300/500/600 mV outputs.
    for (double va_mv : {150.0, 250.0, 300.0}) {
        auto params = generator_params::ideal();
        sinewave_generator g(params);
        g.set_amplitude(millivolt(va_mv));
        const auto wave = settled_waveform(g, 32);
        const auto tone = dsp::estimate_tone(wave, 1.0 / 16.0, 1.0);
        EXPECT_NEAR(tone.amplitude, 2.0 * va_mv * 1e-3, 0.03 * 2.0 * va_mv * 1e-3)
            << "va = " << va_mv << " mV";
    }
}

TEST(Generator, AmplitudeScalesLinearlyWithProgramming) {
    auto params = generator_params::ideal();
    sinewave_generator g1(params);
    sinewave_generator g2(params);
    g1.set_amplitude(millivolt(100.0));
    g2.set_amplitude(millivolt(200.0));
    const auto w1 = settled_waveform(g1, 16);
    const auto w2 = settled_waveform(g2, 16);
    const double a1 = dsp::estimate_tone(w1, 1.0 / 16.0, 1.0).amplitude;
    const double a2 = dsp::estimate_tone(w2, 1.0 / 16.0, 1.0).amplitude;
    EXPECT_NEAR(a2 / a1, 2.0, 1e-6);
}

TEST(Generator, IdealGeneratorHasVanishingInBandHarmonics) {
    auto params = generator_params::ideal();
    sinewave_generator g(params);
    g.set_amplitude(millivolt(250.0));
    const auto wave = settled_waveform(g, 64);
    const double fundamental = dsp::estimate_tone(wave, 1.0 / 16.0, 1.0).amplitude;
    for (int h = 2; h <= 5; ++h) {
        const double harmonic =
            dsp::estimate_tone(wave, static_cast<double>(h) / 16.0, 1.0).amplitude;
        // Exact sine input + linear filter: harmonics at numerical noise.
        EXPECT_LT(harmonic / fundamental, 1e-9) << "harmonic " << h;
    }
}

TEST(Generator, CapacitorMismatchCreatesOnlyOddHarmonics) {
    auto params = generator_params::ideal();
    params.process.cap_mismatch_sigma = 0.01; // exaggerated 1 % mismatch
    params.seed = 77;
    sinewave_generator g(params);
    g.set_amplitude(millivolt(250.0));
    const auto wave = settled_waveform(g, 128);
    const double fundamental = dsp::estimate_tone(wave, 1.0 / 16.0, 1.0).amplitude;
    const double h2 = dsp::estimate_tone(wave, 2.0 / 16.0, 1.0).amplitude;
    const double h3 = dsp::estimate_tone(wave, 3.0 / 16.0, 1.0).amplitude;
    const double h5 = dsp::estimate_tone(wave, 5.0 / 16.0, 1.0).amplitude;
    // Mirror symmetry of the capacitor reuse (cap_array.hpp): even
    // harmonics stay at numerical noise, odd ones carry the mismatch.
    EXPECT_LT(h2 / fundamental, 1e-9);
    EXPECT_GT(std::max(h3, h5) / fundamental, 1e-6);
}

TEST(Generator, SameSeedSameWaveform) {
    generator_params params; // full non-ideal defaults
    params.seed = 2024;
    sinewave_generator a(params);
    sinewave_generator b(params);
    a.set_amplitude(millivolt(150.0));
    b.set_amplitude(millivolt(150.0));
    const auto wa = a.generate(256);
    const auto wb = b.generate(256);
    for (std::size_t i = 0; i < wa.size(); ++i) {
        ASSERT_DOUBLE_EQ(wa[i], wb[i]) << "diverged at sample " << i;
    }
}

TEST(Generator, ResetRestoresPhaseZero) {
    auto params = generator_params::ideal();
    sinewave_generator g(params);
    g.set_amplitude(millivolt(150.0));
    const auto first = g.generate(64);
    g.reset();
    const auto second = g.generate(64);
    for (std::size_t i = 0; i < first.size(); ++i) {
        ASSERT_DOUBLE_EQ(first[i], second[i]);
    }
}

TEST(Generator, ExpectedAmplitudeMatchesMeasured) {
    auto params = generator_params::ideal();
    sinewave_generator g(params);
    g.set_amplitude(millivolt(200.0));
    const auto wave = settled_waveform(g, 32);
    const double measured = dsp::estimate_tone(wave, 1.0 / 16.0, 1.0).amplitude;
    EXPECT_NEAR(g.expected_amplitude(), measured, 0.03 * measured);
}

} // namespace
