#include <gtest/gtest.h>

#include "common/error.hpp"
#include "linalg/matrix.hpp"

namespace {

using namespace bistna;
using linalg::matrix;

TEST(Matrix, ConstructionAndIdentity) {
    const auto eye = matrix::identity(3);
    EXPECT_EQ(eye.rows(), 3u);
    EXPECT_DOUBLE_EQ(eye(1, 1), 1.0);
    EXPECT_DOUBLE_EQ(eye(0, 2), 0.0);
    EXPECT_THROW(matrix(0, 3), precondition_error);
}

TEST(Matrix, FromRowsValidatesShape) {
    const auto m = matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
    EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
    EXPECT_THROW(matrix::from_rows({{1.0, 2.0}, {3.0}}), precondition_error);
}

TEST(Matrix, Multiplication) {
    const auto a = matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
    const auto b = matrix::from_rows({{5.0, 6.0}, {7.0, 8.0}});
    const auto c = a * b;
    EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, ApplyVector) {
    const auto a = matrix::from_rows({{1.0, -1.0}, {2.0, 0.5}});
    const auto y = a.apply({2.0, 4.0});
    EXPECT_DOUBLE_EQ(y[0], -2.0);
    EXPECT_DOUBLE_EQ(y[1], 6.0);
    EXPECT_THROW((void)a.apply({1.0}), precondition_error);
}

TEST(Matrix, TransposeAndNorm) {
    const auto a = matrix::from_rows({{1.0, -4.0}, {2.0, 3.0}});
    const auto t = a.transposed();
    EXPECT_DOUBLE_EQ(t(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(a.norm_inf(), 5.0);
}

TEST(Matrix, BlockOperations) {
    auto m = matrix::zero(4);
    m.set_block(1, 1, matrix::identity(2));
    EXPECT_DOUBLE_EQ(m(1, 1), 1.0);
    EXPECT_DOUBLE_EQ(m(2, 2), 1.0);
    const auto b = m.block(1, 1, 2, 2);
    EXPECT_DOUBLE_EQ(b(0, 0), 1.0);
    EXPECT_THROW((void)m.block(3, 3, 2, 2), precondition_error);
}

TEST(Solve, RecoversKnownSolution) {
    const auto a = matrix::from_rows({{2.0, 1.0}, {1.0, 3.0}});
    const auto x = linalg::solve(a, std::vector<double>{5.0, 10.0});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Solve, PivotingHandlesZeroDiagonal) {
    const auto a = matrix::from_rows({{0.0, 1.0}, {1.0, 0.0}});
    const auto x = linalg::solve(a, std::vector<double>{2.0, 3.0});
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Solve, SingularThrows) {
    const auto a = matrix::from_rows({{1.0, 2.0}, {2.0, 4.0}});
    EXPECT_THROW((void)linalg::solve(a, std::vector<double>{1.0, 2.0}), configuration_error);
}

TEST(Solve, MatrixRhsSolvesColumnwise) {
    const auto a = matrix::from_rows({{4.0, 0.0}, {0.0, 2.0}});
    const auto x = linalg::solve(a, matrix::identity(2));
    EXPECT_NEAR(x(0, 0), 0.25, 1e-12);
    EXPECT_NEAR(x(1, 1), 0.5, 1e-12);
}

} // namespace
