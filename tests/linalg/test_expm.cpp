#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/expm.hpp"

namespace {

using namespace bistna;
using linalg::matrix;

TEST(Expm, DiagonalMatrixExponentiatesEntries) {
    auto a = matrix::zero(2);
    a(0, 0) = 1.0;
    a(1, 1) = -2.0;
    const auto e = linalg::expm(a);
    EXPECT_NEAR(e(0, 0), std::exp(1.0), 1e-12);
    EXPECT_NEAR(e(1, 1), std::exp(-2.0), 1e-12);
    EXPECT_NEAR(e(0, 1), 0.0, 1e-14);
}

TEST(Expm, RotationGeneratorGivesSineCosine) {
    // A = [[0, -w], [w, 0]] -> expm(A t) is a rotation by w t.
    const double w = 3.0;
    auto a = matrix::zero(2);
    a(0, 1) = -w;
    a(1, 0) = w;
    const auto e = linalg::expm(a);
    EXPECT_NEAR(e(0, 0), std::cos(w), 1e-12);
    EXPECT_NEAR(e(0, 1), -std::sin(w), 1e-12);
    EXPECT_NEAR(e(1, 0), std::sin(w), 1e-12);
}

TEST(Expm, LargeNormTriggersScalingAndStaysAccurate) {
    auto a = matrix::zero(2);
    a(0, 0) = -50.0;
    a(1, 1) = -80.0;
    const auto e = linalg::expm(a);
    EXPECT_NEAR(e(0, 0), std::exp(-50.0), 1e-28);
    EXPECT_NEAR(e(1, 1), std::exp(-80.0), 1e-40);
}

TEST(Expm, SatisfiesSemigroupProperty) {
    const auto a = matrix::from_rows({{0.1, 0.7}, {-0.4, -0.2}});
    const auto full = linalg::expm(a);
    const auto half = linalg::expm(a * 0.5);
    const auto composed = half * half;
    for (std::size_t r = 0; r < 2; ++r) {
        for (std::size_t c = 0; c < 2; ++c) {
            EXPECT_NEAR(composed(r, c), full(r, c), 1e-12);
        }
    }
}

TEST(DiscretizeZoh, FirstOrderMatchesClosedForm) {
    // x' = -a x + a u: Ad = e^{-a ts}, Bd = 1 - e^{-a ts}.
    const double alpha = 2000.0;
    auto a = matrix::zero(1);
    a(0, 0) = -alpha;
    matrix b(1, 1);
    b(0, 0) = alpha;
    const double ts = 1e-4;
    const auto zoh = linalg::discretize_zoh(a, b, ts);
    EXPECT_NEAR(zoh.ad(0, 0), std::exp(-alpha * ts), 1e-12);
    EXPECT_NEAR(zoh.bd(0, 0), 1.0 - std::exp(-alpha * ts), 1e-12);
}

TEST(DiscretizeZoh, RejectsBadArguments) {
    const auto a = matrix::identity(2);
    matrix b(2, 1);
    EXPECT_THROW((void)linalg::discretize_zoh(a, b, 0.0), bistna::precondition_error);
    matrix b_bad(3, 1);
    EXPECT_THROW((void)linalg::discretize_zoh(a, b_bad, 1e-3), bistna::precondition_error);
}

} // namespace
