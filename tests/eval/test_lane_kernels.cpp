// Lane-major evaluation kernels: every fast-path acquisition variant
// (prebuilt tables + arena, lane-major block, shared broadcast record) and
// the lane-major Goertzel must be bit-identical to the scalar references,
// and the shared-resource caches (demod tables, calibration transplant)
// must be transparent.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "common/arena.hpp"
#include "common/math_util.hpp"
#include "dsp/goertzel.hpp"
#include "eval/acquire_plan.hpp"
#include "eval/signature.hpp"

namespace {

using namespace bistna;
using eval::acquisition_settings;
using eval::calibration_share;
using eval::calibration_snapshot;
using eval::demod_table_cache;
using eval::demod_tables;
using eval::signature_extractor;

constexpr std::size_t kN = 96;

std::vector<double> lane_record(std::size_t lane, std::size_t periods) {
    std::vector<double> record(periods * kN);
    const double amplitude = 0.1 + 0.02 * static_cast<double>(lane);
    const double phase = 0.3 * static_cast<double>(lane);
    for (std::size_t n = 0; n < record.size(); ++n) {
        const double angle = two_pi * static_cast<double>(n) / kN;
        record[n] = amplitude * std::sin(angle + phase) +
                    0.01 * std::sin(3.0 * angle + 0.5 * phase);
    }
    return record;
}

/// Fresh extractors with per-lane params/seeds, plus owning storage.
struct lane_set {
    std::vector<signature_extractor> extractors;
    std::vector<signature_extractor*> pointers;

    explicit lane_set(std::size_t lanes) {
        extractors.reserve(lanes);
        for (std::size_t l = 0; l < lanes; ++l) {
            auto params = sd::modulator_params::cmos035();
            params.input_offset += 1e-4 * static_cast<double>(l);
            extractors.emplace_back(params, 100 + l);
        }
        for (auto& extractor : extractors) {
            pointers.push_back(&extractor);
        }
    }
};

TEST(LaneKernels, GoertzelLanesBitIdenticalToScalarGoertzel) {
    const std::size_t lanes = 7;
    const std::size_t count = 960;
    std::vector<std::vector<double>> records;
    std::vector<double> lane_major(count * lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
        records.push_back(lane_record(l, count / kN));
        for (std::size_t n = 0; n < count; ++n) {
            lane_major[n * lanes + l] = records[l][n];
        }
    }
    std::vector<std::complex<double>> results(lanes);
    dsp::goertzel_lanes(lane_major.data(), count, lanes, 1000.0, 96000.0, results.data());
    for (std::size_t l = 0; l < lanes; ++l) {
        const auto scalar = dsp::goertzel(records[l], 1000.0, 96000.0);
        EXPECT_EQ(results[l].real(), scalar.real()) << "lane " << l;
        EXPECT_EQ(results[l].imag(), scalar.imag()) << "lane " << l;
    }
}

TEST(LaneKernels, TablesArenaVariantBitIdenticalToLegacyAcquireBatch) {
    const std::size_t lanes = 6;
    const std::size_t periods = 20;
    acquisition_settings settings;
    settings.periods = periods;
    settings.offset = eval::offset_mode::chopped;

    std::vector<std::vector<double>> records;
    std::vector<std::span<const double>> spans;
    for (std::size_t l = 0; l < lanes; ++l) {
        records.push_back(lane_record(l, periods));
    }
    for (auto& record : records) {
        spans.emplace_back(record);
    }

    lane_set legacy(lanes), fast(lanes);
    const auto expected = signature_extractor::acquire_batch(legacy.pointers, spans, settings);

    const auto tables = demod_tables::build(settings);
    arena scratch;
    const auto got =
        signature_extractor::acquire_batch(fast.pointers, spans, settings, tables, scratch);

    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t l = 0; l < lanes; ++l) {
        EXPECT_EQ(got[l].i1, expected[l].i1) << "lane " << l;
        EXPECT_EQ(got[l].i2, expected[l].i2) << "lane " << l;
        EXPECT_EQ(got[l].raw_i1, expected[l].raw_i1) << "lane " << l;
        EXPECT_EQ(got[l].raw_i2, expected[l].raw_i2) << "lane " << l;
    }
}

TEST(LaneKernels, LaneMajorAndSharedVariantsBitIdenticalToLegacy) {
    const std::size_t lanes = 5;
    const std::size_t periods = 16;
    acquisition_settings settings;
    settings.periods = periods;
    settings.harmonic_k = 1;
    settings.offset = eval::offset_mode::none;
    const auto tables = demod_tables::build(settings);

    // Lane-major block of distinct records.
    std::vector<std::vector<double>> records;
    std::vector<std::span<const double>> spans;
    std::vector<double> lane_major(periods * kN * lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
        records.push_back(lane_record(l, periods));
    }
    for (std::size_t l = 0; l < lanes; ++l) {
        spans.emplace_back(records[l]);
        for (std::size_t n = 0; n < records[l].size(); ++n) {
            lane_major[n * lanes + l] = records[l][n];
        }
    }
    {
        lane_set legacy(lanes), fast(lanes);
        const auto expected =
            signature_extractor::acquire_batch(legacy.pointers, spans, settings);
        const auto got = signature_extractor::acquire_batch_lane_major(
            fast.pointers, lane_major.data(), settings, tables);
        for (std::size_t l = 0; l < lanes; ++l) {
            EXPECT_EQ(got[l].i1, expected[l].i1) << "lane " << l;
            EXPECT_EQ(got[l].i2, expected[l].i2) << "lane " << l;
        }
    }

    // One broadcast record shared by every lane.
    {
        const auto shared = lane_record(0, periods);
        std::vector<std::span<const double>> all_same(lanes, std::span<const double>(shared));
        lane_set legacy(lanes), fast(lanes);
        const auto expected =
            signature_extractor::acquire_batch(legacy.pointers, all_same, settings);
        const auto got = signature_extractor::acquire_batch_shared(fast.pointers, shared,
                                                                   settings, tables);
        for (std::size_t l = 0; l < lanes; ++l) {
            EXPECT_EQ(got[l].i1, expected[l].i1) << "lane " << l;
            EXPECT_EQ(got[l].i2, expected[l].i2) << "lane " << l;
        }
    }
}

TEST(LaneKernels, DemodTableCacheReturnsOneTablePerProgram) {
    demod_table_cache cache;
    acquisition_settings settings;
    settings.periods = 12;
    const auto first = cache.get(settings);
    const auto second = cache.get(settings);
    EXPECT_EQ(first.get(), second.get()) << "same program must share one table";
    ASSERT_TRUE(first->matches(settings));

    // The cached table is exactly the locally built one.
    const auto local = demod_tables::build(settings);
    EXPECT_EQ(first->q1, local.q1);
    EXPECT_EQ(first->q1_sign, local.q1_sign);
    EXPECT_EQ(first->acc_sign, local.acc_sign);

    settings.harmonic_k = 2;
    const auto other = cache.get(settings);
    EXPECT_NE(other.get(), first.get());
    EXPECT_TRUE(other->matches(settings));
}

TEST(LaneKernels, CalibrationTransplantIsBitIdenticalToCalibrating) {
    const auto params = sd::modulator_params::cmos035();
    const std::uint64_t seed = 42;
    const std::size_t cal_periods = 256;

    // Reference lane calibrates itself.
    signature_extractor reference(params, seed);
    reference.calibrate_offset(cal_periods, kN);

    // Donor lane calibrates and publishes a snapshot.
    signature_extractor donor(params, seed);
    calibration_snapshot snapshot;
    snapshot.params = params;
    snapshot.rng_before = donor.rng_state();
    donor.calibrate_offset(cal_periods, kN);
    snapshot.rng_after = donor.rng_state();
    snapshot.offset_rate_1 = donor.offset_rate_ch1();
    snapshot.offset_rate_2 = donor.offset_rate_ch2();
    snapshot.calibration_samples = donor.calibration_samples();

    // Receiver adopts it instead of calibrating.
    signature_extractor receiver(params, seed);
    ASSERT_TRUE(receiver.try_restore_calibration(snapshot));
    EXPECT_TRUE(receiver.offset_calibrated());
    EXPECT_EQ(receiver.offset_rate_ch1(), reference.offset_rate_ch1());
    EXPECT_EQ(receiver.offset_rate_ch2(), reference.offset_rate_ch2());

    // And the next acquisition is bit-identical to the self-calibrated lane.
    acquisition_settings settings;
    settings.periods = 16;
    settings.offset = eval::offset_mode::calibrated;
    const auto record = lane_record(1, settings.periods);
    const auto source = [&record](std::size_t n) { return record[n]; };
    const auto expected = reference.acquire(source, settings);
    const auto got = receiver.acquire(source, settings);
    EXPECT_EQ(got.i1, expected.i1);
    EXPECT_EQ(got.i2, expected.i2);
    EXPECT_EQ(got.raw_i1, expected.raw_i1);
    EXPECT_EQ(got.raw_i2, expected.raw_i2);

    // Restores are refused on any mismatch: already calibrated, wrong
    // stream position, or wrong params.
    EXPECT_FALSE(receiver.try_restore_calibration(snapshot)) << "already calibrated";
    signature_extractor wrong_seed(params, seed + 1);
    EXPECT_FALSE(wrong_seed.try_restore_calibration(snapshot));
    auto other_params = params;
    other_params.input_offset += 1e-3;
    signature_extractor wrong_params(other_params, seed);
    EXPECT_FALSE(wrong_params.try_restore_calibration(snapshot));
}

TEST(LaneKernels, CalibrationShareVerifiesParamsOnLookup) {
    calibration_share share;
    const auto params = sd::modulator_params::cmos035();
    signature_extractor donor(params, 7);
    calibration_snapshot snapshot;
    snapshot.params = params;
    snapshot.rng_before = donor.rng_state();
    donor.calibrate_offset(128, kN);
    snapshot.rng_after = donor.rng_state();
    snapshot.offset_rate_1 = donor.offset_rate_ch1();
    snapshot.offset_rate_2 = donor.offset_rate_ch2();
    snapshot.calibration_samples = donor.calibration_samples();
    share.store(7, 128, kN, snapshot);
    EXPECT_EQ(share.entries(), 1u);

    EXPECT_NE(share.find(params, 7, 128, kN), nullptr);
    EXPECT_EQ(share.find(params, 8, 128, kN), nullptr) << "different seed";
    EXPECT_EQ(share.find(params, 7, 256, kN), nullptr) << "different length";
    auto other = params;
    other.noise_rms += 1e-6;
    EXPECT_EQ(share.find(other, 7, 128, kN), nullptr) << "different params";
}

} // namespace
