// High-level evaluator: multitone measurement (the Fig. 9 scenario),
// convergence, THD, leakage correction.
#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>

#include "ate/multitone.hpp"
#include "common/math_util.hpp"
#include "eval/evaluator.hpp"

namespace {

using namespace bistna;
using eval::evaluator_config;
using eval::sinewave_evaluator;

evaluator_config ideal_config(std::uint64_t seed = 31) {
    evaluator_config config;
    config.modulator = sd::modulator_params::ideal();
    config.seed = seed;
    config.offset = eval::offset_mode::none;
    return config;
}

TEST(Evaluator, MeasuresFig9MultitoneWithinBounds) {
    const auto stimulus = ate::multitone_source::fig9_stimulus();
    sinewave_evaluator evaluator(ideal_config());
    const auto source = stimulus.as_source();

    const double truths[3] = {0.2, 0.02, 0.002};
    for (std::size_t k = 1; k <= 3; ++k) {
        const auto m = evaluator.measure_harmonic(source, k, 1000);
        // Allow the documented square-wave leakage (A_{3k}/3 etc.) on top
        // of the eq. (4) interval.
        const double leakage = k == 1 ? truths[2] / 3.0 : 0.0;
        EXPECT_NEAR(m.amplitude.volts, truths[k - 1],
                    m.amplitude.bounds_volts.radius() + leakage + 1e-6)
            << "k=" << k;
    }
}

TEST(Evaluator, ConvergenceSeriesTightensMonotonically) {
    const auto stimulus = ate::multitone_source::fig9_stimulus();
    sinewave_evaluator evaluator(ideal_config());
    const auto series =
        evaluator.amplitude_convergence(stimulus.as_source(), 2, {20, 50, 100, 300, 1000});
    ASSERT_EQ(series.size(), 5u);
    for (std::size_t i = 1; i < series.size(); ++i) {
        EXPECT_LT(series[i].bounds_volts.width(), series[i - 1].bounds_volts.width());
    }
    // All checkpoints contain the 0.02 V truth.
    for (const auto& m : series) {
        EXPECT_TRUE(m.bounds_volts.contains(0.02));
    }
}

TEST(Evaluator, PhasesRecoveredForAllTones) {
    const double phases[3] = {0.3, 1.1, 2.2};
    const auto stimulus = ate::multitone_source::fig9_stimulus();
    sinewave_evaluator evaluator(ideal_config());
    const auto source = stimulus.as_source();
    for (std::size_t k = 1; k <= 2; ++k) {
        const auto m = evaluator.measure_harmonic(source, k, 800);
        ASSERT_TRUE(m.phase.has_value()) << "k=" << k;
        const double delta = wrap_phase(m.phase->radians - phases[k - 1]);
        EXPECT_LT(std::abs(delta), 0.05) << "k=" << k;
    }
}

TEST(Evaluator, ThdOfDistortedToneMatchesConstruction) {
    // x = sin + 1% 2nd + 0.3% 3rd harmonic -> THD = -39.6 dB.
    ate::multitone_source stimulus(
        {ate::tone{1, 0.5, 0.2}, ate::tone{2, 0.005, 1.0}, ate::tone{3, 0.0015, 2.0}}, 96);
    sinewave_evaluator evaluator(ideal_config());
    const auto thd = evaluator.measure_thd(stimulus.as_source(), 4, 800);
    const double expected =
        20.0 * std::log10(std::sqrt(0.005 * 0.005 + 0.0015 * 0.0015) / 0.5);
    EXPECT_NEAR(thd.db, expected, 0.5);
    EXPECT_TRUE(thd.bounds_db.contains(expected));
}

TEST(Evaluator, LeakageCorrectionImprovesFundamentalEstimate) {
    // Strong 3rd harmonic leaks A3/3 into the k=1 channel; the corrected
    // sweep removes most of it.
    ate::multitone_source stimulus({ate::tone{1, 0.2, 0.5}, ate::tone{3, 0.06, 1.4}}, 96);
    auto config = ideal_config();
    sinewave_evaluator evaluator(config);
    const auto raw = evaluator.harmonic_sweep(stimulus.as_source(), {1, 3}, 2000);
    const auto corrected = evaluator.corrected_harmonic_sweep(stimulus.as_source(), {1, 3}, 2000);

    const double raw_error = std::abs(raw[0].amplitude.volts - 0.2);
    const double corrected_error = std::abs(corrected[0].amplitude.volts - 0.2);
    EXPECT_LT(corrected_error, raw_error * 0.35)
        << "raw error " << raw_error << ", corrected " << corrected_error;
}

TEST(Evaluator, CalibratedModeAutoCalibrates) {
    auto config = ideal_config();
    config.modulator.input_offset = 8e-3;
    config.offset = eval::offset_mode::calibrated;
    sinewave_evaluator evaluator(config);
    ate::multitone_source stimulus({ate::tone{1, 0.1, 0.0}}, 96);
    const auto m = evaluator.measure_harmonic(stimulus.as_source(), 1, 400);
    EXPECT_TRUE(m.amplitude.bounds_volts.contains(0.1));
    EXPECT_TRUE(evaluator.extractor().offset_calibrated());
}

TEST(Evaluator, NonIdealModulatorStillMeetsRelaxedAccuracy) {
    auto config = ideal_config();
    config.modulator = sd::modulator_params::cmos035();
    config.offset = eval::offset_mode::calibrated;
    sinewave_evaluator evaluator(config);
    ate::multitone_source stimulus({ate::tone{1, 0.2, 0.7}}, 96);
    const auto m = evaluator.measure_harmonic(stimulus.as_source(), 1, 1000);
    // Noise/offset/hysteresis push beyond the ideal bound but stay small.
    EXPECT_NEAR(m.amplitude.volts, 0.2, 2e-3);
}

TEST(Evaluator, MeasureThdRequiresTwoHarmonics) {
    sinewave_evaluator evaluator(ideal_config());
    ate::multitone_source stimulus({ate::tone{1, 0.1, 0.0}}, 96);
    EXPECT_THROW((void)evaluator.measure_thd(stimulus.as_source(), 1, 100),
                 precondition_error);
}

} // namespace
