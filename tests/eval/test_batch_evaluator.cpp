// Tests for the batched acquisition path: signature_extractor::acquire_batch
// / calibrate_offset_batch and the batch_evaluator layer must be
// bit-identical per lane to the scalar reference implementations.
#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "common/math_util.hpp"
#include "eval/batch_evaluator.hpp"
#include "eval/evaluator.hpp"
#include "eval/signature.hpp"

namespace {

using namespace bistna;
using eval::acquisition_settings;
using eval::batch_evaluator;
using eval::evaluator_config;
using eval::offset_mode;
using eval::signature_extractor;
using eval::signature_result;

/// A distinct multi-harmonic record per lane on the N = 96 grid.
std::vector<double> lane_record(std::size_t lane, std::size_t periods) {
    const std::size_t n_per_period = 96;
    std::vector<double> record(periods * n_per_period);
    const double amplitude = 0.2 + 0.04 * static_cast<double>(lane);
    const double phase = 0.3 * static_cast<double>(lane);
    for (std::size_t n = 0; n < record.size(); ++n) {
        const double angle = two_pi * static_cast<double>(n % n_per_period) / 96.0;
        record[n] = amplitude * std::sin(angle + phase) +
                    0.02 * std::sin(3.0 * angle) + 0.01;
    }
    return record;
}

void expect_identical(const signature_result& a, const signature_result& b) {
    EXPECT_EQ(a.i1, b.i1);
    EXPECT_EQ(a.i2, b.i2);
    EXPECT_EQ(a.raw_i1, b.raw_i1);
    EXPECT_EQ(a.raw_i2, b.raw_i2);
    EXPECT_EQ(a.total_samples, b.total_samples);
    EXPECT_EQ(a.harmonic_k, b.harmonic_k);
    EXPECT_EQ(a.periods, b.periods);
    EXPECT_EQ(a.eps_bound, b.eps_bound);
    EXPECT_EQ(a.vref, b.vref);
}

class AcquireBatchModes : public ::testing::TestWithParam<offset_mode> {};

TEST_P(AcquireBatchModes, BitIdenticalToScalarAcquirePerLane) {
    const offset_mode mode = GetParam();
    constexpr std::size_t n_lanes = 5;
    constexpr std::size_t periods = 40;

    acquisition_settings settings;
    settings.harmonic_k = 1;
    settings.periods = periods;
    settings.offset = mode;

    // Realistic modulators so offsets and noise streams actually matter.
    const auto params = sd::modulator_params::cmos035();
    std::vector<signature_extractor> batch_lanes;
    std::vector<signature_extractor> scalar_lanes;
    for (std::size_t l = 0; l < n_lanes; ++l) {
        batch_lanes.emplace_back(params, 900 + l);
        scalar_lanes.emplace_back(params, 900 + l);
    }

    std::vector<std::vector<double>> records;
    for (std::size_t l = 0; l < n_lanes; ++l) {
        records.push_back(lane_record(l, periods));
    }

    std::vector<signature_extractor*> lane_ptrs;
    std::vector<std::span<const double>> spans;
    for (std::size_t l = 0; l < n_lanes; ++l) {
        if (mode == offset_mode::calibrated) {
            batch_lanes[l].calibrate_offset(64);
            scalar_lanes[l].calibrate_offset(64);
        }
        lane_ptrs.push_back(&batch_lanes[l]);
        spans.emplace_back(records[l]);
    }

    const auto batched = signature_extractor::acquire_batch(lane_ptrs, spans, settings);
    ASSERT_EQ(batched.size(), n_lanes);
    for (std::size_t l = 0; l < n_lanes; ++l) {
        const auto scalar = scalar_lanes[l].acquire(
            [&records, l](std::size_t n) { return records[l][n]; }, settings);
        expect_identical(scalar, batched[l]);
    }
}

INSTANTIATE_TEST_SUITE_P(OffsetModes, AcquireBatchModes,
                         ::testing::Values(offset_mode::none, offset_mode::calibrated,
                                           offset_mode::chopped));

TEST(AcquireBatch, CalibrateOffsetBatchMatchesScalarCalibration) {
    const auto params = sd::modulator_params::cmos035();
    constexpr std::size_t n_lanes = 4;
    std::vector<signature_extractor> batch_lanes;
    std::vector<signature_extractor> scalar_lanes;
    std::vector<signature_extractor*> lane_ptrs;
    for (std::size_t l = 0; l < n_lanes; ++l) {
        batch_lanes.emplace_back(params, 50 + l);
        scalar_lanes.emplace_back(params, 50 + l);
    }
    for (auto& lane : batch_lanes) {
        lane_ptrs.push_back(&lane);
    }
    signature_extractor::calibrate_offset_batch(lane_ptrs, 128);
    for (std::size_t l = 0; l < n_lanes; ++l) {
        scalar_lanes[l].calibrate_offset(128);
        EXPECT_TRUE(batch_lanes[l].offset_calibrated());
        EXPECT_EQ(scalar_lanes[l].offset_rate_ch1(), batch_lanes[l].offset_rate_ch1())
            << "lane " << l;
        EXPECT_EQ(scalar_lanes[l].offset_rate_ch2(), batch_lanes[l].offset_rate_ch2())
            << "lane " << l;
    }
}

TEST(AcquireBatch, RejectsMismatchedAndShortInputs) {
    const auto params = sd::modulator_params::ideal();
    signature_extractor lane(params, 1);
    std::vector<signature_extractor*> lanes = {&lane};
    acquisition_settings settings;
    settings.periods = 10;
    settings.offset = offset_mode::none;

    const auto record = lane_record(0, 10);
    std::vector<std::span<const double>> no_records;
    EXPECT_THROW((void)signature_extractor::acquire_batch(lanes, no_records, settings),
                 precondition_error);
    const std::vector<double> short_record(5);
    std::vector<std::span<const double>> short_spans = {short_record};
    EXPECT_THROW((void)signature_extractor::acquire_batch(lanes, short_spans, settings),
                 precondition_error);
}

evaluator_config lane_config(std::uint64_t seed, offset_mode offset) {
    evaluator_config config;
    config.modulator = sd::modulator_params::cmos035();
    config.seed = seed;
    config.offset = offset;
    config.calibration_periods = 64; // keep the test fast
    return config;
}

TEST(BatchEvaluator, HarmonicMeasurementsBitIdenticalToScalarEvaluator) {
    constexpr std::size_t n_lanes = 4;
    constexpr std::size_t periods = 32;

    std::vector<evaluator_config> configs;
    for (std::size_t l = 0; l < n_lanes; ++l) {
        configs.push_back(lane_config(300 + l, offset_mode::calibrated));
    }
    batch_evaluator batch(configs);

    std::vector<std::vector<double>> records;
    std::vector<std::span<const double>> spans;
    for (std::size_t l = 0; l < n_lanes; ++l) {
        records.push_back(lane_record(l, periods));
    }
    for (const auto& record : records) {
        spans.emplace_back(record);
    }

    const auto batched = batch.measure_harmonic(spans, 1, periods);
    ASSERT_EQ(batched.size(), n_lanes);
    for (std::size_t l = 0; l < n_lanes; ++l) {
        eval::sinewave_evaluator scalar(configs[l]);
        const auto expected = scalar.measure_harmonic(
            [&records, l](std::size_t n) { return records[l][n]; }, 1, periods);
        EXPECT_EQ(expected.amplitude.volts, batched[l].amplitude.volts) << "lane " << l;
        EXPECT_EQ(expected.amplitude.bounds_volts, batched[l].amplitude.bounds_volts);
        ASSERT_EQ(expected.phase.has_value(), batched[l].phase.has_value());
        if (expected.phase) {
            EXPECT_EQ(expected.phase->radians, batched[l].phase->radians) << "lane " << l;
            EXPECT_EQ(expected.phase->bounds_radians, batched[l].phase->bounds_radians);
        }
        expect_identical(expected.signature, batched[l].signature);
    }
}

TEST(BatchEvaluator, DcAndThdBitIdenticalToScalarEvaluator) {
    constexpr std::size_t n_lanes = 3;
    constexpr std::size_t periods = 32;

    std::vector<evaluator_config> configs;
    for (std::size_t l = 0; l < n_lanes; ++l) {
        configs.push_back(lane_config(700 + l, offset_mode::none));
    }
    std::vector<std::vector<double>> records;
    std::vector<std::span<const double>> spans;
    for (std::size_t l = 0; l < n_lanes; ++l) {
        records.push_back(lane_record(l, periods));
    }
    for (const auto& record : records) {
        spans.emplace_back(record);
    }

    batch_evaluator dc_batch(configs);
    const auto dc = dc_batch.measure_dc(spans, periods);
    batch_evaluator thd_batch(configs);
    const auto thd = thd_batch.measure_thd(spans, 3, periods);
    ASSERT_EQ(dc.size(), n_lanes);
    ASSERT_EQ(thd.size(), n_lanes);
    for (std::size_t l = 0; l < n_lanes; ++l) {
        auto source = [&records, l](std::size_t n) { return records[l][n]; };
        eval::sinewave_evaluator scalar_dc(configs[l]);
        const auto expected_dc = scalar_dc.measure_dc(source, periods);
        EXPECT_EQ(expected_dc.volts, dc[l].volts) << "lane " << l;
        EXPECT_EQ(expected_dc.bounds_volts, dc[l].bounds_volts) << "lane " << l;

        eval::sinewave_evaluator scalar_thd(configs[l]);
        const auto expected_thd = scalar_thd.measure_thd(source, 3, periods);
        EXPECT_EQ(expected_thd.db, thd[l].db) << "lane " << l;
        EXPECT_EQ(expected_thd.bounds_db, thd[l].bounds_db) << "lane " << l;
    }
}

// Dropping a lane from later acquisitions (the screening self-test gate)
// must not perturb the remaining lanes' streams.
TEST(BatchEvaluator, LaneSubsetAcquisitionLeavesOtherLanesUntouched) {
    constexpr std::size_t periods = 24;
    std::vector<evaluator_config> configs = {lane_config(1, offset_mode::calibrated),
                                             lane_config(2, offset_mode::calibrated),
                                             lane_config(3, offset_mode::calibrated)};
    batch_evaluator batch(configs);

    std::vector<std::vector<double>> records;
    for (std::size_t l = 0; l < configs.size(); ++l) {
        records.push_back(lane_record(l, periods));
    }
    std::vector<std::span<const double>> all_spans;
    for (const auto& record : records) {
        all_spans.emplace_back(record);
    }

    // First acquisition over all lanes, second over lanes {0, 2} only.
    const auto first = batch.measure_harmonic(all_spans, 1, periods);
    const std::vector<std::size_t> subset = {0, 2};
    std::vector<std::span<const double>> subset_spans = {records[0], records[2]};
    const auto second = batch.measure_harmonic_lanes(subset, subset_spans, 1, periods);
    ASSERT_EQ(second.size(), 2u);

    // Scalar counterpart: lane 0 and 2 run two measurements, lane 1 one.
    for (std::size_t i = 0; i < subset.size(); ++i) {
        const std::size_t l = subset[i];
        eval::sinewave_evaluator scalar(configs[l]);
        auto source = [&records, l](std::size_t n) { return records[l][n]; };
        const auto scalar_first = scalar.measure_harmonic(source, 1, periods);
        const auto scalar_second = scalar.measure_harmonic(source, 1, periods);
        EXPECT_EQ(scalar_first.amplitude.volts, first[l].amplitude.volts);
        EXPECT_EQ(scalar_second.amplitude.volts, second[i].amplitude.volts);
        expect_identical(scalar_second.signature, second[i].signature);
    }
}

TEST(BatchEvaluator, RejectsHeterogeneousSharedSettings) {
    std::vector<evaluator_config> configs = {lane_config(1, offset_mode::calibrated),
                                             lane_config(2, offset_mode::none)};
    EXPECT_THROW(batch_evaluator b(configs), precondition_error);
    EXPECT_THROW(batch_evaluator b(std::vector<evaluator_config>{}), precondition_error);
}

} // namespace
