// Square-wave demodulation reference: alignment rules, quadrature shift,
// exact Fourier coefficients.
#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"
#include "eval/square_wave.hpp"

namespace {

using namespace bistna;
using eval::demod_reference;

TEST(SquareWave, AlignmentRule) {
    // N = 96: k with 96 mod 4k == 0.
    for (std::size_t k : {1UL, 2UL, 3UL, 4UL, 6UL, 8UL, 12UL, 24UL}) {
        EXPECT_TRUE(demod_reference::alignment_ok(k, 96)) << "k=" << k;
    }
    for (std::size_t k : {5UL, 7UL, 9UL, 16UL, 48UL}) {
        EXPECT_FALSE(demod_reference::alignment_ok(k, 96)) << "k=" << k;
    }
    EXPECT_TRUE(demod_reference::alignment_ok(0, 96));
}

TEST(SquareWave, MisalignedConstructionThrows) {
    EXPECT_THROW(demod_reference(5, 96), precondition_error);
}

TEST(SquareWave, PeriodAndHalfCycleBalance) {
    const demod_reference demod(3, 96);
    EXPECT_EQ(demod.period(), 32u);
    int sum = 0;
    for (std::size_t n = 0; n < 96; ++n) {
        sum += demod.in_phase_sign(n);
    }
    EXPECT_EQ(sum, 0); // zero mean over full periods
}

TEST(SquareWave, QuadratureIsQuarterPeriodDelayed) {
    const demod_reference demod(2, 96);
    const std::size_t quarter = demod.period() / 4;
    for (std::size_t n = 0; n < 192; ++n) {
        EXPECT_EQ(demod.quadrature_sign(n + quarter), demod.in_phase_sign(n)) << "n=" << n;
    }
}

TEST(SquareWave, FundamentalCoefficientApproachesTwoOverPi) {
    for (std::size_t k : {1UL, 2UL, 3UL}) {
        const demod_reference demod(k, 96);
        const double p = static_cast<double>(demod.period());
        // Closed form: |c1| = 2 / (P sin(pi/P)).
        const double expected = 2.0 / (p * std::sin(pi / p));
        EXPECT_NEAR(std::abs(demod.c1()), expected, 1e-12) << "k=" << k;
        EXPECT_NEAR(std::abs(demod.c1()), 2.0 / pi, 0.01) << "k=" << k;
    }
}

TEST(SquareWave, PhaseOfC1IsHalfSampleOffset) {
    const demod_reference demod(1, 96);
    // arg(c1) = pi/P - pi/2 (derivation in square_wave.hpp).
    const double p = static_cast<double>(demod.period());
    EXPECT_NEAR(std::arg(demod.c1()), pi / p - half_pi, 1e-12);
}

TEST(SquareWave, EvenCoefficientsVanish) {
    const demod_reference demod(1, 96);
    EXPECT_NEAR(std::abs(demod.coefficient(2)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(demod.coefficient(4)), 0.0, 1e-12);
}

TEST(SquareWave, ThirdCoefficientIsOneThirdScale) {
    const demod_reference demod(1, 96);
    const double ratio = std::abs(demod.coefficient(3)) / std::abs(demod.c1());
    EXPECT_NEAR(ratio, 1.0 / 3.0, 0.01); // the harmonic-leakage weight
}

TEST(SquareWave, DcModeIsConstantPlusOne) {
    const demod_reference demod(0, 96);
    for (std::size_t n = 0; n < 10; ++n) {
        EXPECT_EQ(demod.in_phase_sign(n), 1);
        EXPECT_EQ(demod.quadrature_sign(n), 1);
    }
    EXPECT_DOUBLE_EQ(std::abs(demod.c1()), 1.0);
}

} // namespace
