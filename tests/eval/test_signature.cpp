// Signature acquisition: offset handling modes, checkpoints, validation.
#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"
#include "eval/estimator.hpp"
#include "eval/signature.hpp"

namespace {

using namespace bistna;
using eval::acquisition_settings;
using eval::offset_mode;
using eval::signature_extractor;

constexpr std::size_t kN = 96;

eval::sample_source sine_source(double amplitude, std::size_t k, double phase) {
    return [=](std::size_t n) {
        return amplitude *
               std::sin(two_pi * static_cast<double>(k) * static_cast<double>(n) / kN + phase);
    };
}

TEST(Signature, OffsetCorruptsUncompensatedDcMeasurement) {
    auto params = sd::modulator_params::ideal();
    params.input_offset = 10e-3;
    signature_extractor extractor(params, 3);
    acquisition_settings settings;
    settings.harmonic_k = 0;
    settings.periods = 200;
    settings.offset = offset_mode::none;
    const auto sig = extractor.acquire([](std::size_t) { return 0.0; }, settings);
    const auto dc = eval::estimate_dc(sig);
    // Reads the offset instead of the true zero input.
    EXPECT_NEAR(dc.volts, 10e-3, 2e-3);
}

TEST(Signature, CalibrationRemovesOffset) {
    auto params = sd::modulator_params::ideal();
    params.input_offset = 10e-3;
    signature_extractor extractor(params, 3);
    extractor.calibrate_offset(4096, kN);
    acquisition_settings settings;
    settings.harmonic_k = 0;
    settings.periods = 200;
    settings.offset = offset_mode::calibrated;
    const auto sig = extractor.acquire([](std::size_t) { return 0.05; }, settings);
    const auto dc = eval::estimate_dc(sig);
    EXPECT_TRUE(dc.bounds_volts.contains(0.05))
        << "got " << dc.volts << " in [" << dc.bounds_volts.lo() << ", "
        << dc.bounds_volts.hi() << "]";
}

TEST(Signature, ChoppingRemovesOffsetWithoutCalibration) {
    auto params = sd::modulator_params::ideal();
    params.input_offset = 10e-3;
    signature_extractor extractor(params, 3);
    acquisition_settings settings;
    settings.harmonic_k = 1;
    settings.periods = 200;
    settings.offset = offset_mode::chopped;
    const auto sig = extractor.acquire(sine_source(0.2, 1, 0.9), settings);
    const auto amp = eval::estimate_amplitude(sig);
    EXPECT_TRUE(amp.bounds_volts.contains(0.2))
        << "got " << amp.volts << " +/- " << amp.bounds_volts.radius();
    EXPECT_DOUBLE_EQ(sig.eps_bound, 8.0); // documented chop bound
}

TEST(Signature, ChopRequiresEvenPeriods) {
    signature_extractor extractor(sd::modulator_params::ideal(), 3);
    acquisition_settings settings;
    settings.harmonic_k = 1;
    settings.periods = 201; // odd
    settings.offset = offset_mode::chopped;
    EXPECT_THROW((void)extractor.acquire(sine_source(0.1, 1, 0.0), settings),
                 precondition_error);
}

TEST(Signature, CalibratedModeRequiresCalibration) {
    signature_extractor extractor(sd::modulator_params::ideal(), 3);
    acquisition_settings settings;
    settings.offset = offset_mode::calibrated;
    EXPECT_THROW((void)extractor.acquire(sine_source(0.1, 1, 0.0), settings),
                 precondition_error);
}

TEST(Signature, RawCountsAreIntegerBitSums) {
    signature_extractor extractor(sd::modulator_params::ideal(), 3);
    acquisition_settings settings;
    settings.harmonic_k = 1;
    settings.periods = 10;
    settings.offset = offset_mode::none;
    const auto sig = extractor.acquire(sine_source(0.3, 1, 0.0), settings);
    EXPECT_LE(std::abs(sig.raw_i1), static_cast<long long>(sig.total_samples));
    EXPECT_LE(std::abs(sig.raw_i2), static_cast<long long>(sig.total_samples));
    EXPECT_EQ(sig.total_samples, 10u * kN);
}

TEST(Signature, CheckpointsMatchIndividualRuns) {
    // A checkpointed acquisition must agree with the same-length direct
    // acquisition when the noise and initial state are disabled.
    auto params = sd::modulator_params::ideal();
    signature_extractor ex1(params, 5);
    signature_extractor ex2(params, 5);

    acquisition_settings settings;
    settings.harmonic_k = 1;
    settings.offset = offset_mode::none;
    settings.randomize_initial_state = false;

    const auto source = sine_source(0.25, 1, 1.7);
    const auto checkpointed = ex1.acquire_with_checkpoints(source, settings, {20, 50, 100});

    settings.periods = 100;
    const auto direct = ex2.acquire(source, settings);
    ASSERT_EQ(checkpointed.size(), 3u);
    EXPECT_EQ(checkpointed.back().raw_i1, direct.raw_i1);
    EXPECT_EQ(checkpointed.back().raw_i2, direct.raw_i2);
    EXPECT_EQ(checkpointed[0].periods, 20u);
    EXPECT_EQ(checkpointed[1].total_samples, 50u * kN);
}

TEST(Signature, CheckpointsRejectChoppedMode) {
    signature_extractor extractor(sd::modulator_params::ideal(), 5);
    acquisition_settings settings;
    settings.offset = offset_mode::chopped;
    EXPECT_THROW((void)extractor.acquire_with_checkpoints(sine_source(0.1, 1, 0.0), settings,
                                                          {10, 20}),
                 precondition_error);
}

TEST(Signature, EveryCheckpointSatisfiesEq4) {
    signature_extractor extractor(sd::modulator_params::ideal(), 21);
    acquisition_settings settings;
    settings.harmonic_k = 1;
    settings.offset = offset_mode::none;
    const double amplitude = 0.15;
    const auto sigs = extractor.acquire_with_checkpoints(
        sine_source(amplitude, 1, 0.6), settings, {20, 40, 80, 160, 320, 640});
    for (const auto& sig : sigs) {
        const auto amp = eval::estimate_amplitude(sig);
        EXPECT_TRUE(amp.bounds_volts.contains(amplitude)) << "M = " << sig.periods;
    }
}

} // namespace
