// Property tests for the paper's eqs. (3)-(5): the reported intervals must
// *always* contain the true DC level, amplitude and phase, for any
// in-range stimulus, any M, any aligned harmonic k.
#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/math_util.hpp"
#include "eval/estimator.hpp"
#include "eval/evaluator.hpp"
#include "eval/signature.hpp"
#include "gen/generator.hpp"

namespace {

using namespace bistna;
using eval::acquisition_settings;
using eval::offset_mode;
using eval::signature_extractor;

constexpr std::size_t kN = 96;

eval::sample_source sine_source(double amplitude, std::size_t k, double phase,
                                double dc = 0.0) {
    return [=](std::size_t n) {
        return dc + amplitude * std::sin(two_pi * static_cast<double>(k) *
                                             static_cast<double>(n) / kN +
                                         phase);
    };
}

TEST(Estimator, DcLevelWithinEq3Bounds) {
    signature_extractor extractor(sd::modulator_params::ideal(), 11);
    for (double dc : {-0.3, -0.05, 0.0, 0.12, 0.5}) {
        acquisition_settings settings;
        settings.harmonic_k = 0;
        settings.periods = 64;
        settings.offset = offset_mode::none;
        const auto sig = extractor.acquire([=](std::size_t) { return dc; }, settings);
        const auto m = eval::estimate_dc(sig);
        EXPECT_TRUE(m.bounds_volts.contains(dc))
            << "dc=" << dc << " bounds=[" << m.bounds_volts.lo() << ", "
            << m.bounds_volts.hi() << "]";
        EXPECT_NEAR(m.volts, dc, m.bounds_volts.radius() + 1e-12);
    }
}

// Amplitude (eq. 4) and phase (eq. 5) containment over a parameter sweep.
class Eq45Property
    : public ::testing::TestWithParam<std::tuple<double, std::size_t, std::size_t, double>> {};

TEST_P(Eq45Property, IntervalsContainTruth) {
    const auto [amplitude, k, periods, phase] = GetParam();
    signature_extractor extractor(sd::modulator_params::ideal(), 13);

    acquisition_settings settings;
    settings.harmonic_k = k;
    settings.periods = periods;
    settings.offset = offset_mode::none;
    const auto sig = extractor.acquire(sine_source(amplitude, k, phase), settings);

    const auto amp = eval::estimate_amplitude(sig);
    EXPECT_TRUE(amp.bounds_volts.contains(amplitude))
        << "A=" << amplitude << " k=" << k << " M=" << periods << " got ["
        << amp.bounds_volts.lo() << ", " << amp.bounds_volts.hi() << "]";

    // Phase truth: x = A sin(k w0 n + phase) -> reported phase is `phase`
    // (sin-reference, exact constants).
    const auto ph = eval::estimate_phase(sig);
    if (ph.has_value()) {
        const double truth = wrap_phase(phase);
        const double delta = wrap_phase(truth - ph->radians);
        EXPECT_LE(std::abs(delta), ph->bounds_radians.radius() + 2e-2)
            << "A=" << amplitude << " k=" << k << " M=" << periods;
    } else {
        // Phase may only be undetermined when the box reaches the origin,
        // i.e. tiny amplitudes.
        EXPECT_LT(amplitude * static_cast<double>(periods) * kN, 3000.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AmplitudeHarmonicPeriodPhase, Eq45Property,
    ::testing::Combine(::testing::Values(0.002, 0.02, 0.2, 0.6),
                       ::testing::Values(std::size_t{1}, std::size_t{2}, std::size_t{3},
                                         std::size_t{4}, std::size_t{6}),
                       ::testing::Values(std::size_t{20}, std::size_t{200}),
                       ::testing::Values(0.0, 0.7, 2.5, -1.3)));

TEST(Estimator, PaperConstantsCloseToExact) {
    signature_extractor extractor(sd::modulator_params::ideal(), 17);
    acquisition_settings settings;
    settings.harmonic_k = 1;
    settings.periods = 400;
    settings.offset = offset_mode::none;
    const auto sig = extractor.acquire(sine_source(0.3, 1, 0.4), settings);
    const auto exact = eval::estimate_amplitude(sig, eval::constants_mode::exact);
    const auto paper = eval::estimate_amplitude(sig, eval::constants_mode::paper);
    // At N = 96 the DT correction is ~0.018 %.
    EXPECT_NEAR(exact.volts, paper.volts, 4e-4 * exact.volts);
}

TEST(Estimator, AmplitudeErrorShrinksWithMn) {
    signature_extractor extractor(sd::modulator_params::ideal(), 19);
    const double amplitude = 0.2;
    double previous_width = 1e9;
    for (std::size_t periods : {20UL, 100UL, 500UL}) {
        acquisition_settings settings;
        settings.harmonic_k = 1;
        settings.periods = periods;
        settings.offset = offset_mode::none;
        const auto sig = extractor.acquire(sine_source(amplitude, 1, 1.0), settings);
        const auto amp = eval::estimate_amplitude(sig);
        EXPECT_LT(amp.bounds_volts.width(), previous_width);
        previous_width = amp.bounds_volts.width();
    }
    // eq. (4): width ~ vref * 2*sqrt(2)*eps / (MN |c1|) ~ 2.6e-4 V at M=500.
    EXPECT_LT(previous_width, 3e-4);
}

TEST(Estimator, ThdComposesHarmonicsWithBounds) {
    std::vector<eval::amplitude_measurement> harmonics(3);
    harmonics[0].volts = 0.2;
    harmonics[0].bounds_volts = interval(0.199, 0.201);
    harmonics[1].volts = 0.02;
    harmonics[1].bounds_volts = interval(0.0199, 0.0201);
    harmonics[2].volts = 0.002;
    harmonics[2].bounds_volts = interval(0.0019, 0.0021);
    const auto thd = eval::compute_thd(harmonics);
    const double truth = 20.0 * std::log10(std::hypot(0.02, 0.002) / 0.2);
    EXPECT_TRUE(thd.bounds_db.contains(truth));
    EXPECT_NEAR(thd.db, truth, 0.05);
}

TEST(Estimator, RejectsWrongHarmonicKind) {
    eval::signature_result sig;
    sig.harmonic_k = 1;
    sig.total_samples = 96;
    EXPECT_THROW((void)eval::estimate_dc(sig), precondition_error);
    sig.harmonic_k = 0;
    EXPECT_THROW((void)eval::estimate_amplitude(sig), precondition_error);
}

} // namespace
