// End-to-end shard runner: the full coordinator path -- manifest on disk,
// real worker processes under the supervisor, merge -- checked against the
// single-process store byte for byte, with and without an injected worker
// kill.  Workers are this test binary re-executed behind the
// --bistna-shard-worker dispatch flag (tests/main.cpp); when the
// screening_lot example binary happens to be built alongside, its --store
// output is cross-checked against the coordinator's too.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "shard/coordinator.hpp"
#include "shard/worker.hpp"
#include "store/lot_store.hpp"
#include "store/records.hpp"

namespace {

using namespace bistna;

class temp_dir {
public:
    explicit temp_dir(const char* name) : path_(std::string("/tmp/") + name) {
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~temp_dir() { std::filesystem::remove_all(path_); }
    std::string file(const std::string& name) const { return path_ + "/" + name; }

private:
    std::string path_;
};

shard::lot_manifest fast_manifest(std::uint64_t dice) {
    shard::lot_manifest manifest;
    manifest.periods = 20;
    manifest.settle_periods = 4;
    manifest.distortion_periods = 40;
    manifest.calibration_periods = 256;
    manifest.dice = dice;
    manifest.first_seed = 1;
    manifest.threads = 1;
    manifest.batch_lanes = 4;
    return manifest;
}

std::string read_bytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

std::string single_process_bytes(const temp_dir& dir,
                                 const shard::lot_manifest& manifest) {
    shard::worker_shard_options whole;
    whole.units = manifest.total_units();
    shard::run_worker_shard(manifest, dir.file("oracle"), whole);
    return read_bytes(dir.file("oracle"));
}

shard::supervisor_options fleet_options(const temp_dir& dir, std::size_t shards,
                                        std::size_t workers) {
    shard::supervisor_options options;
    options.worker_command = {"/proc/self/exe", "--bistna-shard-worker=1"};
    options.shards = shards;
    options.max_processes = workers;
    options.shard_dir = dir.file("shards");
    return options;
}

TEST(ShardIntegration, CoordinatorMatchesSingleProcessByteForByte) {
    temp_dir dir("bistna_integration_shard");
    const auto manifest = fast_manifest(9);

    const auto report = shard::run_lot(manifest, dir.file("merged"),
                                       fleet_options(dir, 4, 2));
    EXPECT_EQ(report.merge.records_merged, 9u);
    EXPECT_EQ(report.shards.retries, 0u);
    EXPECT_EQ(read_bytes(dir.file("merged")), single_process_bytes(dir, manifest));

    // The merged store scans back as the full lot in die-seed order.
    const auto records = store::lot_store::scan(dir.file("merged"));
    ASSERT_EQ(records.size(), 9u);
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(store::report_from_record(records[i]).die,
                  manifest.first_seed + i);
    }
}

TEST(ShardIntegration, SurvivesAnInjectedWorkerKill) {
    temp_dir dir("bistna_integration_kill");
    const auto manifest = fast_manifest(8);

    auto options = fleet_options(dir, 4, 4);
    options.max_attempts = 2;
    // Every shard's first attempt dies by SIGKILL mid-write after one
    // record; the retries complete, and the merge must still be exact.
    options.extra_worker_args = {"--kill-after-records=1", "--kill-attempt=1"};
    const auto report =
        shard::run_lot(manifest, dir.file("merged"), options);

    EXPECT_GE(report.shards.retries, 1u);
    EXPECT_GE(report.merge.torn_files, 1u);
    EXPECT_EQ(report.merge.records_merged, 8u);
    EXPECT_EQ(read_bytes(dir.file("merged")), single_process_bytes(dir, manifest));
}

TEST(ShardIntegration, DictionaryLotShardsEndToEnd) {
    temp_dir dir("bistna_integration_dict");
    auto manifest = fast_manifest(1);
    manifest.workload = shard::workload_kind::dictionary;
    manifest.grid_points = 2;
    manifest.thd_max_harmonic = 0;

    const auto report = shard::run_lot(manifest, dir.file("merged"),
                                       fleet_options(dir, 3, 3));
    EXPECT_EQ(report.merge.records_merged, manifest.total_units());
    EXPECT_EQ(read_bytes(dir.file("merged")), single_process_bytes(dir, manifest));
}

TEST(ShardIntegration, ScreeningLotExampleStoreMatchesCoordinator) {
    // The example streams its --store file with production-default
    // settings; a manifest with the same defaults run through the shard
    // fleet must produce the identical file.  Skipped when the example
    // binary is not part of this build (sanitizer CI builds examples OFF).
    const auto example = std::filesystem::read_symlink("/proc/self/exe")
                             .parent_path() /
                         "screening_lot";
    if (!std::filesystem::exists(example)) {
        GTEST_SKIP() << "screening_lot example not built";
    }

    temp_dir dir("bistna_integration_example");
    const std::uint64_t dice = 4;
    const std::string command = example.string() + " --dice=" +
                                std::to_string(dice) +
                                " --sigma=0.03 --threads=1 --lanes=4 --store=" +
                                dir.file("example.store") + " > " +
                                dir.file("example.log") + " 2>&1";
    ASSERT_EQ(std::system(command.c_str()), 0) << "example run failed";

    shard::lot_manifest manifest; // defaults mirror the example's settings
    manifest.dice = dice;
    manifest.threads = 1;
    manifest.batch_lanes = 4;
    const auto report = shard::run_lot(manifest, dir.file("merged"),
                                       fleet_options(dir, 2, 2));
    EXPECT_EQ(report.merge.records_merged, dice);
    EXPECT_EQ(read_bytes(dir.file("merged")), read_bytes(dir.file("example.store")))
        << "shard fleet and example --store diverged on the same lot";
}

} // namespace
