// End-to-end: the screening service against the offline store path.
//
// One in-process bistna_serverd, several concurrent svc::client sessions
// with mixed workloads (screening + dictionary), each writing its
// streamed records to a lot store file -- which must match the file the
// single-process offline worker writes for the same manifest BYTE FOR
// BYTE.  Plus the two ways a session ends early: a client that vanishes
// mid-job (disconnect-cancel frees the pool) and an induced overload
// (typed shed, the surviving sessions' bytes still identical).
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "shard/manifest.hpp"
#include "shard/worker.hpp"
#include "store/lot_store.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"

namespace {

using namespace bistna;
using namespace std::chrono_literals;
using svc::client;
using svc::server_options;
using svc::service_server;

class temp_dir {
public:
    explicit temp_dir(const char* name)
        : path_(std::string("/tmp/") + name + "_" + std::to_string(::getpid())) {
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~temp_dir() { std::filesystem::remove_all(path_); }
    std::string file(const std::string& name) const { return path_ + "/" + name; }

private:
    std::string path_;
};

std::string read_bytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

shard::lot_manifest fast_screening(std::uint64_t dice, std::uint64_t first_seed) {
    shard::lot_manifest manifest;
    manifest.periods = 20;
    manifest.settle_periods = 4;
    manifest.distortion_periods = 40;
    manifest.calibration_periods = 256;
    manifest.dice = dice;
    manifest.first_seed = first_seed;
    manifest.threads = 1;
    manifest.batch_lanes = 4;
    return manifest;
}

shard::lot_manifest fast_dictionary() {
    auto manifest = fast_screening(0, 1);
    manifest.workload = shard::workload_kind::dictionary;
    manifest.grid_points = 2;
    return manifest;
}

/// The single-process offline reference: run the whole lot through the
/// shard worker and return the store file's raw bytes.
std::string offline_store_bytes(const temp_dir& dir, const shard::lot_manifest& manifest,
                                const std::string& name) {
    const std::string path = dir.file(name);
    shard::worker_shard_options options;
    options.first_unit = 0;
    options.units = manifest.total_units();
    run_worker_shard(manifest, path, options);
    return read_bytes(path);
}

/// One service session: submit, stream, append every record to a fresh
/// store file, return its raw bytes.
std::string service_store_bytes(const std::string& endpoint, const temp_dir& dir,
                                const shard::lot_manifest& manifest,
                                const std::string& name) {
    client c(endpoint);
    const auto records = c.run(manifest);
    const std::string path = dir.file(name);
    auto out = store::lot_store::open_append(path);
    for (const auto& r : records) {
        out.append(r);
    }
    out.flush();
    return read_bytes(path);
}

TEST(ServiceEndToEnd, ConcurrentMixedSessionsMatchTheOfflineStoreByteForByte) {
    temp_dir dir("bistna_svc_e2e");
    const std::string socket = dir.file("serverd.sock");

    server_options options;
    options.listen_path = socket;
    options.worker_threads = 3;
    options.max_active_jobs = 4;
    service_server server(std::move(options));
    server.start();

    // Three concurrent sessions, mixed workloads, all on one shared pool.
    const std::vector<shard::lot_manifest> lots = {
        fast_screening(8, 100),
        fast_screening(5, 4242),
        fast_dictionary(),
    };
    std::vector<std::future<std::string>> streamed;
    for (std::size_t i = 0; i < lots.size(); ++i) {
        streamed.push_back(std::async(std::launch::async, [&, i] {
            return service_store_bytes(socket, dir, lots[i],
                                       "svc_" + std::to_string(i) + ".store");
        }));
    }
    for (std::size_t i = 0; i < lots.size(); ++i) {
        const std::string via_service = streamed[i].get();
        const std::string offline =
            offline_store_bytes(dir, lots[i], "off_" + std::to_string(i) + ".store");
        ASSERT_FALSE(via_service.empty());
        EXPECT_EQ(via_service, offline)
            << "lot " << i << ": service stream diverged from the offline store";
    }

    server.stop();
    const auto counters = server.counters();
    EXPECT_EQ(counters.jobs_completed, 3u);
    EXPECT_EQ(counters.jobs_failed, 0u);
    EXPECT_EQ(counters.sessions_shed, 0u);
}

TEST(ServiceEndToEnd, DisconnectAndOverloadLeaveSurvivorsBitIdentical) {
    temp_dir dir("bistna_svc_chaos");
    const std::string socket = dir.file("serverd.sock");

    server_options options;
    options.listen_path = socket;
    options.worker_threads = 2;
    options.max_active_jobs = 1;    // one job runs at a time
    options.admission_capacity = 2; // two may wait
    service_server server(std::move(options));
    server.start();

    // A job far too large to finish within the test hogs the active
    // slot (its client vanishes below, so this stays fast)...
    auto hog = std::make_unique<client>(socket);
    hog->submit(1, fast_screening(5000, 7000));
    ASSERT_TRUE(hog->next_event().has_value()); // admitted

    // ...a well-behaved session queues behind it...
    std::future<std::string> survivor = std::async(std::launch::async, [&] {
        return service_store_bytes(socket, dir, fast_screening(6, 123),
                                   "survivor.store");
    });
    std::this_thread::sleep_for(200ms);

    // ...a third queues too, then the admission queue is full: the next
    // submit is shed with the typed overloaded error.
    client queued(socket);
    queued.submit(1, fast_dictionary());
    std::this_thread::sleep_for(200ms);

    client shed(socket);
    shed.submit(1, fast_screening(2, 1));
    try {
        (void)shed.collect(1);
        FAIL() << "expected overloaded";
    } catch (const svc::service_error& e) {
        EXPECT_EQ(e.code(), svc::error_code::overloaded);
    }

    // The hog vanishes mid-job: disconnect-cancel must free the slot.
    hog.reset();

    // Both queued jobs now run to completion, bit-identical to offline.
    const std::string survivor_bytes = survivor.get();
    EXPECT_EQ(survivor_bytes,
              offline_store_bytes(dir, fast_screening(6, 123), "survivor_off.store"));

    const auto dict_records = queued.collect(1);
    const auto dict = fast_dictionary();
    EXPECT_EQ(dict_records.size(), dict.total_units());
    {
        const std::string path = dir.file("dict.store");
        auto out = store::lot_store::open_append(path);
        for (const auto& r : dict_records) {
            out.append(r);
        }
        out.flush();
        EXPECT_EQ(read_bytes(path),
                  offline_store_bytes(dir, dict, "dict_off.store"));
    }

    server.stop();
    const auto counters = server.counters();
    EXPECT_GE(counters.jobs_cancelled, 1u); // the hog's job
    EXPECT_GE(counters.jobs_rejected, 1u);  // the shed submit
    EXPECT_EQ(counters.jobs_failed, 0u);
}

} // namespace
