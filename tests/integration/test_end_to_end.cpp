// End-to-end properties spanning the whole stack: the paper's headline
// claims in miniature.
#include <gtest/gtest.h>

#include <cmath>

#include "ate/multitone.hpp"
#include "baseline/dft_analyzer.hpp"
#include "common/math_util.hpp"
#include "core/network_analyzer.hpp"
#include "dsp/spectrum.hpp"
#include "dut/filters.hpp"
#include "eval/evaluator.hpp"
#include "gen/generator.hpp"

namespace {

using namespace bistna;

TEST(EndToEnd, GeneratorFeedsEvaluatorThroughCalibrationPath) {
    // BIST self-verification (paper section II): bypass the DUT and check
    // the evaluator reads the generator's programmed amplitude.
    core::demonstrator_board board(gen::generator_params::ideal(),
                                   std::make_unique<dut::bypass_dut>());
    board.set_amplitude(millivolt(125.0));
    const auto tb = sim::timebase::for_wave_frequency(kilohertz(1.0));
    auto record = board.render(tb, 200, core::signal_path::calibration);
    const auto source = core::demonstrator_board::as_source(std::move(record));

    eval::evaluator_config config;
    config.modulator = sd::modulator_params::ideal();
    config.offset = eval::offset_mode::none;
    eval::sinewave_evaluator evaluator(config);
    const auto m = evaluator.measure_harmonic(source, 1, 200);
    EXPECT_NEAR(m.amplitude.volts, 0.25, 0.01);
}

TEST(EndToEnd, EvaluatorAgreesWithCoherentDftBaseline) {
    // The BIST evaluator (1-bit signatures) and the full-resolution DFT
    // baseline must agree within the eq. (4) interval.
    const auto stimulus = ate::multitone_source::fig9_stimulus();
    eval::evaluator_config config;
    config.modulator = sd::modulator_params::ideal();
    config.offset = eval::offset_mode::none;
    eval::sinewave_evaluator evaluator(config);

    std::vector<double> record;
    for (std::size_t n = 0; n < 96 * 500; ++n) {
        record.push_back(stimulus.sample(n));
    }
    baseline::dft_analyzer dft;
    for (std::size_t k = 1; k <= 3; ++k) {
        const auto bist = evaluator.measure_harmonic(stimulus.as_source(), k, 500);
        const auto reference = dft.measure(record, k, 96);
        EXPECT_NEAR(bist.amplitude.volts, reference.amplitude,
                    bist.amplitude.bounds_volts.radius() + 1e-3)
            << "k=" << k;
    }
}

TEST(EndToEnd, SeventyDbDynamicRangeWithEnoughPeriods) {
    // Headline claim: >70 dB dynamic range.  A -70 dBFS tone (0.22 mV on
    // the 0.7 V scale) must be measurable within ~2 dB given enough M.
    const double amplitude = 0.7 * std::pow(10.0, -70.0 / 20.0);
    ate::multitone_source stimulus({ate::tone{1, amplitude, 0.4}}, 96);
    eval::evaluator_config config;
    config.modulator = sd::modulator_params::ideal();
    config.offset = eval::offset_mode::none;
    eval::sinewave_evaluator evaluator(config);

    const auto m = evaluator.measure_harmonic(stimulus.as_source(), 1, 20000);
    const double error_db = std::abs(m.amplitude.dbfs - (-70.0));
    EXPECT_LT(error_db, 2.0);
}

TEST(EndToEnd, AccuracySelectableByM) {
    // "the accuracy of the evaluation can be selected by choosing a proper
    // number of periods M" -- quadrupling MN should roughly quarter the
    // guaranteed bound width.
    ate::multitone_source stimulus({ate::tone{1, 0.1, 0.0}}, 96);
    eval::evaluator_config config;
    config.modulator = sd::modulator_params::ideal();
    config.offset = eval::offset_mode::none;
    eval::sinewave_evaluator evaluator(config);
    const auto series =
        evaluator.amplitude_convergence(stimulus.as_source(), 1, {100, 400, 1600});
    ASSERT_EQ(series.size(), 3u);
    EXPECT_NEAR(series[0].bounds_volts.width() / series[1].bounds_volts.width(), 4.0, 0.2);
    EXPECT_NEAR(series[1].bounds_volts.width() / series[2].bounds_volts.width(), 4.0, 0.2);
}

TEST(EndToEnd, FullBodePointOnNonIdealSilicon) {
    // Everything non-ideal at once: mismatched generator, noisy modulators,
    // 1 % board components.  The analyzer must still land on the drawn
    // instance's true response within a fraction of a dB in the passband.
    gen::generator_params gen_params;
    gen_params.seed = 11;
    core::demonstrator_board board(gen_params, dut::make_paper_dut(0.01, 13));
    board.set_amplitude(millivolt(150.0));

    core::analyzer_settings settings;
    settings.evaluator.modulator = sd::modulator_params::cmos035();
    settings.evaluator.offset = eval::offset_mode::calibrated;
    settings.periods = 200;
    core::network_analyzer analyzer(board, settings);

    const auto p = analyzer.measure_point(hertz{300.0});
    EXPECT_NEAR(p.gain_db, p.ideal_gain_db, 0.3);
    EXPECT_NEAR(p.phase_deg, p.ideal_phase_deg, 2.5);
}

TEST(EndToEnd, GeneratorSpectrumHasPaperGradeSfdr) {
    // Fig. 8b shape: with the calibrated 0.35 um non-idealities the
    // generator's in-band SFDR lands near 70 dB.
    gen::generator_params params; // cmos035 defaults
    params.seed = 21;
    gen::sinewave_generator generator(params);
    generator.set_amplitude(millivolt(250.0)); // 1 Vpp output
    generator.settle(64);
    const auto wave = generator.generate(16 * 2048);
    const auto metrics = dsp::analyze_tone(wave, 16.0, 1.0, 8);
    EXPECT_GT(metrics.sfdr_db, 55.0);
    EXPECT_LT(metrics.sfdr_db, 90.0);
    EXPECT_LT(metrics.thd_db, -55.0);
}

} // namespace
