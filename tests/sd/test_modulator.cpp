// Tests for the 1st-order sigma-delta modulator: mean tracking, the
// bounded-state property behind the paper's eps in [-4, 4], and behaviour
// under the documented non-idealities.
#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "sd/modulator.hpp"

namespace {

using bistna::sd::modulator_params;
using bistna::sd::sd_modulator;

TEST(SdModulator, BitstreamMeanTracksDcInput) {
    sd_modulator mod(modulator_params::ideal());
    const double vref = mod.params().vref;
    for (double dc : {-0.5, -0.1, 0.0, 0.2, 0.6}) {
        mod.reset();
        long long acc = 0;
        const std::size_t n = 100000;
        for (std::size_t i = 0; i < n; ++i) {
            acc += mod.step(dc, true);
        }
        const double mean = vref * static_cast<double>(acc) / static_cast<double>(n);
        EXPECT_NEAR(mean, dc, 5.0 * vref / static_cast<double>(n) * 4.0)
            << "dc = " << dc;
    }
}

TEST(SdModulator, ModulationControlFlipsInputSign) {
    sd_modulator plus(modulator_params::ideal());
    sd_modulator minus(modulator_params::ideal());
    long long acc_plus = 0;
    long long acc_minus = 0;
    const std::size_t n = 50000;
    for (std::size_t i = 0; i < n; ++i) {
        acc_plus += plus.step(0.3, true);
        acc_minus += minus.step(0.3, false);
    }
    EXPECT_NEAR(static_cast<double>(acc_plus), -static_cast<double>(acc_minus), 8.0);
}

TEST(SdModulator, StateStaysBoundedForInRangeInput) {
    sd_modulator mod(modulator_params::ideal());
    const double vref = mod.params().vref;
    bistna::rng rng(7);
    double max_state = 0.0;
    for (std::size_t i = 0; i < 200000; ++i) {
        const double x = rng.uniform(-vref, vref);
        mod.step(x, rng.bernoulli(0.5));
        max_state = std::max(max_state, std::abs(mod.state()));
    }
    // Band derived in modulator.hpp: |w| <= 2*b*vref = 0.8*vref.
    EXPECT_LE(max_state, 0.8 * vref + 1e-12);
}

// ---------------------------------------------------------------------------
// The central property: |sum(y)/vref - sum(d)| <= 4 for any in-range input.
// Parameterized over signal shapes and lengths.
// ---------------------------------------------------------------------------

class EpsilonBoundTest
    : public ::testing::TestWithParam<std::tuple<double, double, std::size_t, unsigned>> {};

TEST_P(EpsilonBoundTest, AccumulatedErrorWithinFourLsb) {
    const auto [amplitude, freq_norm, length, seed] = GetParam();
    sd_modulator mod(modulator_params::ideal());
    const double vref = mod.params().vref;
    bistna::rng rng(seed);
    mod.reset(rng.uniform(-0.5, 0.5) * vref);

    double sum_y = 0.0;
    long long sum_d = 0;
    const double phase = rng.uniform(0.0, bistna::two_pi);
    for (std::size_t n = 0; n < length; ++n) {
        const double x =
            amplitude * std::sin(bistna::two_pi * freq_norm * static_cast<double>(n) + phase);
        const bool q = (n / 16) % 2 == 0; // some square modulation
        const double y = q ? x : -x;
        sum_y += y;
        sum_d += mod.step(x, q);
    }
    const double eps = sum_y / vref - static_cast<double>(sum_d);
    EXPECT_LE(std::abs(eps), 4.0) << "amplitude=" << amplitude << " f=" << freq_norm
                                  << " len=" << length;
}

INSTANTIATE_TEST_SUITE_P(
    SignalSweep, EpsilonBoundTest,
    ::testing::Combine(::testing::Values(0.05, 0.2, 0.5, 0.69),
                       ::testing::Values(1.0 / 96.0, 3.0 / 96.0, 0.11, 0.37),
                       ::testing::Values(std::size_t{960}, std::size_t{9600}),
                       ::testing::Values(1u, 2u, 3u)));

TEST(SdModulator, LeakyIntegratorStillNearlyTracksMean) {
    modulator_params params = modulator_params::ideal();
    params.dc_gain_db = 60.0; // strong leak
    sd_modulator mod(params);
    long long acc = 0;
    const std::size_t n = 200000;
    for (std::size_t i = 0; i < n; ++i) {
        acc += mod.step(0.25, true);
    }
    const double mean = mod.params().vref * static_cast<double>(acc) / static_cast<double>(n);
    // Finite gain produces a small gain error, not a gross failure.
    EXPECT_NEAR(mean, 0.25, 0.01);
}

TEST(SdModulator, ComparatorOffsetShiftsBitstreamMean) {
    modulator_params params = modulator_params::ideal();
    params.input_offset = 5e-3;
    sd_modulator mod(params);
    long long acc = 0;
    const std::size_t n = 200000;
    for (std::size_t i = 0; i < n; ++i) {
        acc += mod.step(0.0, true);
    }
    const double mean = mod.params().vref * static_cast<double>(acc) / static_cast<double>(n);
    EXPECT_NEAR(mean, 5e-3, 5e-4); // offset shows up in the mean, as the paper says
}

TEST(SdModulator, ClipEventsCountedWhenInputExceedsStableRange) {
    modulator_params params = modulator_params::ideal();
    params.integrator_swing = 1.0;
    sd_modulator mod(params);
    for (std::size_t i = 0; i < 10000; ++i) {
        mod.step(2.5, true); // far out of range
    }
    EXPECT_GT(mod.clip_events(), 0u);
}

TEST(SdModulator, RejectsNonPositiveConfig) {
    modulator_params params = modulator_params::ideal();
    params.ci_over_cf = 0.0;
    EXPECT_THROW(sd_modulator m(params), bistna::precondition_error);
    params = modulator_params::ideal();
    params.vref = -1.0;
    EXPECT_THROW(sd_modulator m(params), bistna::precondition_error);
}

} // namespace
