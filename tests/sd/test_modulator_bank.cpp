// Tests for the lockstep SoA modulator bank: per-lane bit-identity with
// the scalar sd_modulator reference, the eqs. (3)-(5) bounded-state / eps
// property on every lane, and invariance under lane count and lane
// permutation (lanes never interact).
#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "sd/modulator.hpp"
#include "sd/modulator_bank.hpp"

namespace {

using bistna::sd::modulator_bank;
using bistna::sd::modulator_params;
using bistna::sd::sd_modulator;

/// A spread of lane configurations covering the documented non-idealities.
std::vector<modulator_params> lane_configs() {
    std::vector<modulator_params> configs;
    configs.push_back(modulator_params::ideal());
    configs.push_back(modulator_params::cmos035()); // noisy lane
    modulator_params leaky = modulator_params::ideal();
    leaky.dc_gain_db = 60.0;
    configs.push_back(leaky);
    modulator_params latch = modulator_params::ideal();
    latch.comparator_offset = 2.0e-3;
    latch.comparator_hysteresis = 1.0e-3;
    latch.input_offset = 1.5e-3;
    configs.push_back(latch);
    modulator_params clipping = modulator_params::ideal();
    clipping.integrator_swing = 0.2;
    configs.push_back(clipping);
    return configs;
}

TEST(ModulatorBank, EveryLaneBitIdenticalToScalarModulator) {
    const auto configs = lane_configs();
    modulator_bank bank;
    std::vector<sd_modulator> scalars;
    for (std::size_t l = 0; l < configs.size(); ++l) {
        bank.add_lane(configs[l], bistna::rng(100 + l));
        scalars.emplace_back(configs[l], bistna::rng(100 + l));
    }

    bistna::rng stimulus(5);
    std::vector<double> inputs(configs.size());
    std::vector<double> bits(configs.size());
    for (std::size_t n = 0; n < 20000; ++n) {
        for (auto& x : inputs) {
            x = stimulus.uniform(-0.7, 0.7);
        }
        const bool q = stimulus.bernoulli(0.5);
        bank.step(inputs.data(), q, bits.data());
        for (std::size_t l = 0; l < configs.size(); ++l) {
            const int scalar_bit = scalars[l].step(inputs[l], q);
            ASSERT_EQ(static_cast<double>(scalar_bit), bits[l]) << "lane " << l << " n " << n;
            ASSERT_EQ(scalars[l].state(), bank.state(l)) << "lane " << l << " n " << n;
        }
    }
    for (std::size_t l = 0; l < configs.size(); ++l) {
        EXPECT_EQ(scalars[l].clip_events(), bank.clip_events(l)) << "lane " << l;
    }
}

TEST(ModulatorBank, ResetLaneMatchesScalarReset) {
    modulator_bank bank;
    bank.add_lane(modulator_params::ideal());
    sd_modulator scalar(modulator_params::ideal());
    double bit = 0.0;
    double input = 0.31;
    for (std::size_t n = 0; n < 100; ++n) {
        bank.step(&input, true, &bit);
        scalar.step(input, true);
    }
    bank.reset_lane(0, 0.123);
    scalar.reset(0.123);
    EXPECT_EQ(scalar.state(), bank.state(0));
    EXPECT_EQ(scalar.clip_events(), bank.clip_events(0));
    for (std::size_t n = 0; n < 100; ++n) {
        bank.step(&input, false, &bit);
        const int scalar_bit = scalar.step(input, false);
        ASSERT_EQ(static_cast<double>(scalar_bit), bit);
        ASSERT_EQ(scalar.state(), bank.state(0));
    }
}

// The central paper property asserted per lane: with |y| <= vref the
// integrator state stays within 2*b*vref and the accumulated error
// |sum(y)/vref - sum(d)| stays within 4 LSB -- eqs. (3)-(5).
TEST(ModulatorBank, BoundedStateAndEpsilonHeldOnEveryLane) {
    constexpr std::size_t n_lanes = 8;
    modulator_bank bank;
    bistna::rng setup(11);
    std::vector<double> amplitude(n_lanes);
    std::vector<double> freq_norm(n_lanes);
    std::vector<double> phase(n_lanes);
    for (std::size_t l = 0; l < n_lanes; ++l) {
        bank.add_lane(modulator_params::ideal());
        bank.reset_lane(l, setup.uniform(-0.5, 0.5) * bank.params(l).vref);
        amplitude[l] = setup.uniform(0.05, 0.69);
        freq_norm[l] = setup.uniform(0.005, 0.45);
        phase[l] = setup.uniform(0.0, bistna::two_pi);
    }
    const double vref = bank.params(0).vref;
    const double state_band = 2.0 * bank.params(0).ci_over_cf * vref;

    std::vector<double> inputs(n_lanes);
    std::vector<double> bits(n_lanes);
    std::vector<double> sum_y(n_lanes, 0.0);
    std::vector<double> sum_d(n_lanes, 0.0);
    const std::size_t length = 9600;
    for (std::size_t n = 0; n < length; ++n) {
        const bool q = (n / 16) % 2 == 0;
        for (std::size_t l = 0; l < n_lanes; ++l) {
            inputs[l] = amplitude[l] *
                        std::sin(bistna::two_pi * freq_norm[l] * static_cast<double>(n) +
                                 phase[l]);
        }
        bank.step(inputs.data(), q, bits.data());
        for (std::size_t l = 0; l < n_lanes; ++l) {
            sum_y[l] += q ? inputs[l] : -inputs[l];
            sum_d[l] += bits[l];
            ASSERT_LE(std::abs(bank.state(l)), state_band + 1e-12)
                << "lane " << l << " n " << n;
        }
    }
    for (std::size_t l = 0; l < n_lanes; ++l) {
        const double eps = sum_y[l] / vref - sum_d[l];
        EXPECT_LE(std::abs(eps), 4.0) << "lane " << l;
        EXPECT_EQ(bank.clip_events(l), 0u) << "lane " << l;
    }
}

// A lane's trajectory must not depend on how many other lanes share the
// bank: embed the same configuration in banks of 1, 4 and 8 lanes.
TEST(ModulatorBank, LaneCountInvariance) {
    const modulator_params probe = modulator_params::cmos035();
    constexpr std::uint64_t probe_seed = 77;
    bistna::rng stimulus(3);
    std::vector<double> record(5000);
    for (auto& x : record) {
        x = stimulus.uniform(-0.6, 0.6);
    }

    auto run_probe_lane = [&](std::size_t total_lanes, std::size_t probe_lane) {
        modulator_bank bank;
        for (std::size_t l = 0; l < total_lanes; ++l) {
            if (l == probe_lane) {
                bank.add_lane(probe, bistna::rng(probe_seed));
            } else {
                bank.add_lane(modulator_params::cmos035(), bistna::rng(1000 + l));
            }
        }
        std::vector<double> inputs(total_lanes);
        std::vector<double> bits(total_lanes);
        std::vector<double> probe_bits;
        probe_bits.reserve(record.size());
        for (std::size_t n = 0; n < record.size(); ++n) {
            for (std::size_t l = 0; l < total_lanes; ++l) {
                inputs[l] = l == probe_lane ? record[n] : -record[n];
            }
            bank.step(inputs.data(), (n / 8) % 2 == 0, bits.data());
            probe_bits.push_back(bits[probe_lane]);
        }
        probe_bits.push_back(bank.state(probe_lane));
        return probe_bits;
    };

    const auto solo = run_probe_lane(1, 0);
    EXPECT_EQ(solo, run_probe_lane(4, 2));
    EXPECT_EQ(solo, run_probe_lane(8, 7));
}

// Permuting the lane order permutes the outputs and nothing else.
TEST(ModulatorBank, LanePermutationInvariance) {
    const auto configs = lane_configs();
    const std::vector<std::size_t> permutation = {4, 2, 0, 3, 1};
    ASSERT_EQ(permutation.size(), configs.size());

    modulator_bank forward;
    modulator_bank permuted;
    for (std::size_t l = 0; l < configs.size(); ++l) {
        forward.add_lane(configs[l], bistna::rng(500 + l));
        permuted.add_lane(configs[permutation[l]], bistna::rng(500 + permutation[l]));
    }

    bistna::rng stimulus(9);
    std::vector<double> inputs(configs.size());
    std::vector<double> permuted_inputs(configs.size());
    std::vector<double> bits_fwd(configs.size());
    std::vector<double> bits_perm(configs.size());
    for (std::size_t n = 0; n < 10000; ++n) {
        for (auto& x : inputs) {
            x = stimulus.uniform(-0.7, 0.7);
        }
        for (std::size_t l = 0; l < configs.size(); ++l) {
            permuted_inputs[l] = inputs[permutation[l]];
        }
        const bool q = n % 3 != 0;
        forward.step(inputs.data(), q, bits_fwd.data());
        permuted.step(permuted_inputs.data(), q, bits_perm.data());
        for (std::size_t l = 0; l < configs.size(); ++l) {
            ASSERT_EQ(bits_fwd[permutation[l]], bits_perm[l]) << "lane " << l << " n " << n;
            ASSERT_EQ(forward.state(permutation[l]), permuted.state(l));
        }
    }
    for (std::size_t l = 0; l < configs.size(); ++l) {
        EXPECT_EQ(forward.clip_events(permutation[l]), permuted.clip_events(l));
    }
}

TEST(ModulatorBank, ClipCountersArePerLane) {
    modulator_bank bank;
    modulator_params clipping = modulator_params::ideal();
    clipping.integrator_swing = 1.0;
    bank.add_lane(clipping);
    bank.add_lane(modulator_params::ideal());
    std::vector<double> inputs = {2.5, 0.1}; // lane 0 far out of range
    std::vector<double> bits(2);
    for (std::size_t n = 0; n < 10000; ++n) {
        bank.step(inputs.data(), true, bits.data());
    }
    EXPECT_GT(bank.clip_events(0), 0u);
    EXPECT_EQ(bank.clip_events(1), 0u);
}

TEST(ModulatorBank, AccumulateMatchesPerSampleStepping) {
    const auto configs = lane_configs();
    modulator_bank stepped;
    modulator_bank fused;
    for (std::size_t l = 0; l < configs.size(); ++l) {
        stepped.add_lane(configs[l], bistna::rng(42 + l));
        fused.add_lane(configs[l], bistna::rng(42 + l));
    }

    const std::size_t total = 4800;
    bistna::rng stimulus(17);
    std::vector<std::vector<double>> records(configs.size(), std::vector<double>(total));
    for (auto& record : records) {
        for (auto& x : record) {
            x = stimulus.uniform(-0.7, 0.7);
        }
    }
    std::vector<unsigned char> qs(total);
    std::vector<double> signs(total);
    for (std::size_t n = 0; n < total; ++n) {
        qs[n] = (n % 96) < 48 ? 1 : 0;
        signs[n] = n >= total / 2 ? -1.0 : 1.0;
    }

    std::vector<double> expected(configs.size(), 0.0);
    std::vector<double> inputs(configs.size());
    std::vector<double> bits(configs.size());
    for (std::size_t n = 0; n < total; ++n) {
        for (std::size_t l = 0; l < configs.size(); ++l) {
            inputs[l] = records[l][n];
        }
        stepped.step(inputs.data(), qs[n] != 0, bits.data());
        for (std::size_t l = 0; l < configs.size(); ++l) {
            expected[l] += signs[n] * bits[l];
        }
    }

    std::vector<const double*> lane_records;
    for (const auto& record : records) {
        lane_records.push_back(record.data());
    }
    std::vector<double> acc(configs.size(), 0.0);
    fused.accumulate(lane_records.data(), qs.data(), signs.data(), total, acc.data());
    for (std::size_t l = 0; l < configs.size(); ++l) {
        EXPECT_EQ(expected[l], acc[l]) << "lane " << l;
        EXPECT_EQ(stepped.state(l), fused.state(l)) << "lane " << l;
        EXPECT_EQ(stepped.clip_events(l), fused.clip_events(l)) << "lane " << l;
    }
}

TEST(ModulatorBank, GroundedAccumulateMatchesScalarCalibrationLoop) {
    const auto configs = lane_configs();
    modulator_bank bank;
    std::vector<sd_modulator> scalars;
    for (std::size_t l = 0; l < configs.size(); ++l) {
        bank.add_lane(configs[l], bistna::rng(7 + l));
        scalars.emplace_back(configs[l], bistna::rng(7 + l));
    }

    const std::size_t total = 96 * 64;
    std::vector<double> acc(configs.size(), 0.0);
    bank.accumulate_grounded(total, acc.data());
    for (std::size_t l = 0; l < configs.size(); ++l) {
        long long scalar_acc = 0;
        for (std::size_t n = 0; n < total; ++n) {
            scalar_acc += scalars[l].step(0.0, true);
        }
        EXPECT_EQ(static_cast<double>(scalar_acc), acc[l]) << "lane " << l;
        EXPECT_EQ(scalars[l].state(), bank.state(l)) << "lane " << l;
    }
}

TEST(ModulatorBank, RejectsNonPositiveConfig) {
    modulator_bank bank;
    modulator_params params = modulator_params::ideal();
    params.ci_over_cf = 0.0;
    EXPECT_THROW((void)bank.add_lane(params), bistna::precondition_error);
    params = modulator_params::ideal();
    params.vref = -1.0;
    EXPECT_THROW((void)bank.add_lane(params), bistna::precondition_error);
    EXPECT_THROW((void)bank.state(5), bistna::precondition_error);
}

} // namespace
