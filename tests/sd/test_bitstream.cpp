#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"
#include "sd/bitstream.hpp"
#include "sd/modulator.hpp"

namespace {

using namespace bistna;

TEST(Bitstream, AccumulateAndRunningSum) {
    const std::vector<int> bits = {1, 1, -1, 1, -1, -1, 1};
    EXPECT_EQ(sd::accumulate_bits(bits), 1);
    const auto sums = sd::running_sum(bits);
    ASSERT_EQ(sums.size(), bits.size());
    EXPECT_EQ(sums.front(), 1);
    EXPECT_EQ(sums.back(), 1);
    EXPECT_EQ(sums[2], 1);
}

TEST(Bitstream, MeanVolts) {
    const std::vector<int> bits(1000, 1);
    EXPECT_DOUBLE_EQ(sd::bitstream_mean_volts(bits, 0.7), 0.7);
    EXPECT_THROW((void)sd::bitstream_mean_volts({}, 0.7), precondition_error);
}

TEST(Bitstream, BoxcarDecodeRecoversSlowSine) {
    // Modulate a slow sine, then boxcar-decode; the reconstruction should
    // track the input within the quantization floor of the window.
    sd::sd_modulator mod(sd::modulator_params::ideal());
    const double vref = mod.params().vref;
    const std::size_t n = 96 * 200;
    std::vector<int> bits;
    std::vector<double> input;
    bits.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double x = 0.4 * std::sin(two_pi * static_cast<double>(i) / (96.0 * 4.0));
        input.push_back(x);
        bits.push_back(mod.step(x, true));
    }
    const std::size_t window = 48;
    const auto decoded = sd::boxcar_decode(bits, window, vref);
    double worst = 0.0;
    for (std::size_t i = 0; i < decoded.size(); ++i) {
        // Compare against the input at the window center.
        const double reference = input[i + window / 2];
        worst = std::max(worst, std::abs(decoded[i] - reference));
    }
    EXPECT_LT(worst, 0.1); // coarse reconstruction, bounded error
}

TEST(Bitstream, BoxcarValidation) {
    EXPECT_THROW((void)sd::boxcar_decode({1, -1}, 0, 0.7), precondition_error);
    EXPECT_THROW((void)sd::boxcar_decode({1, -1}, 5, 0.7), precondition_error);
}

} // namespace
