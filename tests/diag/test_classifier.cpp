// Nearest-trajectory classifier edge cases on hand-built dictionaries: an
// empty dictionary, single-point trajectories, a healthy die below the
// no-fault threshold, overlapping trajectories producing an ambiguity set,
// and severity interpolation along a polyline.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "diag/classifier.hpp"

namespace {

using namespace bistna;

/// A 2-component space (stimulus + offset rate) so distances are easy to
/// reason about by hand.
diag::signature_space tiny_space() {
    diag::signature_space space;
    space.include_gain = false;
    space.include_phase = false;
    space.include_stimulus_phase = false;
    space.frequencies_hz = {1000.0};
    return space;
}

diag::fault_dictionary tiny_dictionary() {
    diag::fault_dictionary dictionary;
    dictionary.space = tiny_space();
    dictionary.healthy = {0.30, 0.0};
    return dictionary;
}

TEST(Classifier, EmptyDictionaryReportsNoFault) {
    diag::fault_dictionary dictionary;
    dictionary.space = tiny_space();
    const diag::classifier clf(dictionary);
    const auto result = clf.classify(std::vector<double>{0.5, 0.5});
    EXPECT_FALSE(result.fault_detected);
    EXPECT_TRUE(result.ranked.empty());
    EXPECT_TRUE(result.ambiguity.empty());
}

TEST(Classifier, HealthyDieBelowThresholdIsNoFault) {
    auto dictionary = tiny_dictionary();
    dictionary.trajectories = {{diag::fault_kind::integrator_leak,
                                {{0.0, {0.30, 0.0}}, {0.05, {0.10, 0.0}}}}};
    const diag::classifier clf(dictionary);

    // Tiny measurement noise around the healthy signature: no fault.
    const auto healthy = clf.classify(std::vector<double>{0.3002, 0.0001});
    EXPECT_FALSE(healthy.fault_detected);
    EXPECT_LT(healthy.healthy_distance, clf.options().healthy_threshold);
    // Hypotheses are still ranked for inspection.
    ASSERT_EQ(healthy.ranked.size(), 1u);

    // A die far down the leak trajectory: fault detected, severity follows.
    const auto faulty = clf.classify(std::vector<double>{0.10, 0.0});
    EXPECT_TRUE(faulty.fault_detected);
    EXPECT_GT(faulty.healthy_distance, clf.options().healthy_threshold);
    EXPECT_EQ(faulty.ranked.front().kind, diag::fault_kind::integrator_leak);
    EXPECT_NEAR(faulty.ranked.front().severity, 0.05, 1e-9);
}

TEST(Classifier, SinglePointTrajectoryMatchesAtItsSeverity) {
    auto dictionary = tiny_dictionary();
    dictionary.trajectories = {
        {diag::fault_kind::comparator_offset, {{0.4, {0.30, 0.57}}}},
        {diag::fault_kind::integrator_leak, {{0.05, {0.10, 0.0}}}},
    };
    const diag::classifier clf(dictionary);
    const auto result = clf.classify(std::vector<double>{0.30, 0.55});
    ASSERT_EQ(result.ranked.size(), 2u);
    EXPECT_EQ(result.ranked.front().kind, diag::fault_kind::comparator_offset);
    EXPECT_DOUBLE_EQ(result.ranked.front().severity, 0.4);
    EXPECT_TRUE(result.fault_detected);
}

TEST(Classifier, SeverityInterpolatesAlongThePolyline) {
    auto dictionary = tiny_dictionary();
    // Straight trajectory: stimulus drops 0.30 -> 0.10 over severity 0..1.
    dictionary.trajectories = {{diag::fault_kind::opamp_degradation,
                                {{0.0, {0.30, 0.0}}, {0.5, {0.20, 0.0}}, {1.0, {0.10, 0.0}}}}};
    const diag::classifier clf(dictionary);
    // Query at 3/4 of the drop, slightly off the line on the other axis.
    const auto result = clf.classify(std::vector<double>{0.15, 0.01});
    ASSERT_FALSE(result.ranked.empty());
    EXPECT_NEAR(result.ranked.front().severity, 0.75, 0.01);
}

TEST(Classifier, OverlappingTrajectoriesFormAnAmbiguitySet) {
    auto dictionary = tiny_dictionary();
    // Two faults whose trajectories coincide on the stimulus axis -- the
    // classic indistinguishable pair.  A third, distant fault must stay
    // out of the ambiguity set.
    dictionary.trajectories = {
        {diag::fault_kind::integrator_leak, {{0.0, {0.30, 0.0}}, {0.05, {0.10, 0.0}}}},
        {diag::fault_kind::opamp_degradation, {{0.0, {0.30, 0.0}}, {1.0, {0.10, 0.0}}}},
        {diag::fault_kind::comparator_offset, {{0.0, {0.30, 0.0}}, {0.9, {0.30, 1.0}}}},
    };
    const diag::classifier clf(dictionary);
    const auto result = clf.classify(std::vector<double>{0.15, 0.0});
    EXPECT_TRUE(result.fault_detected);
    ASSERT_EQ(result.ranked.size(), 3u);
    ASSERT_EQ(result.ambiguity.size(), 2u);
    EXPECT_EQ(result.ambiguity[0].distance, result.ambiguity[1].distance);
    EXPECT_NE(result.ambiguity[0].kind, result.ambiguity[1].kind);
    for (const auto& hypothesis : result.ambiguity) {
        EXPECT_NE(hypothesis.kind, diag::fault_kind::comparator_offset);
    }
}

TEST(Classifier, RejectsMismatchedSignatureDimension) {
    const diag::classifier clf(tiny_dictionary());
    EXPECT_THROW(clf.classify(std::vector<double>{1.0}), precondition_error);
    EXPECT_THROW(clf.classify(std::vector<double>{1.0, 2.0, 3.0}), precondition_error);
}

TEST(Classifier, ScalesFloorFlatComponents) {
    // One component never moves in the dictionary; its scale must fall
    // back to the measurement floor instead of collapsing to zero.
    auto dictionary = tiny_dictionary();
    dictionary.trajectories = {{diag::fault_kind::integrator_leak,
                                {{0.0, {0.30, 0.0}}, {0.05, {0.10, 0.0}}}}};
    const diag::classifier clf(dictionary);
    const auto floors = dictionary.space.component_floors();
    ASSERT_EQ(clf.component_scales().size(), 2u);
    EXPECT_GT(clf.component_scales()[0], floors[0]); // spread-driven
    EXPECT_EQ(clf.component_scales()[1], floors[1]); // floor-driven
}

} // namespace
