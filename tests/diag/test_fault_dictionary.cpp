// Signature space and dictionary serialization: component-name encoding
// round-trips the space, csv_write/csv_read round-trips every double
// bit-exactly, malformed inputs are rejected, and signature extraction
// sanitizes the unbounded readings hard faults produce.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include "common/error.hpp"
#include "core/screening.hpp"
#include "diag/fault_dictionary.hpp"

namespace {

using namespace bistna;

class temp_csv {
public:
    explicit temp_csv(const char* name) : path_(std::string("/tmp/") + name) {}
    ~temp_csv() { std::remove(path_.c_str()); }
    const std::string& path() const { return path_; }

private:
    std::string path_;
};

diag::signature_space paper_space(std::size_t thd_max_harmonic = 3) {
    return diag::signature_space::from_mask(core::spec_mask::paper_lowpass(),
                                            thd_max_harmonic);
}

/// A small synthetic dictionary with non-trivial doubles in every slot.
diag::fault_dictionary synthetic_dictionary() {
    diag::fault_dictionary dictionary;
    dictionary.space = paper_space();
    const std::size_t dims = dictionary.space.dimensions();
    auto signature = [&](double base) {
        std::vector<double> s(dims);
        for (std::size_t c = 0; c < dims; ++c) {
            s[c] = base + static_cast<double>(c) / 3.0;
        }
        return s;
    };
    dictionary.healthy = signature(0.30301449882080411);
    dictionary.trajectories = {
        {diag::fault_kind::cap_unit_mismatch,
         {{-0.5, signature(-1.0 / 3.0)}, {0.0, signature(0.1)}, {0.5, signature(0.7)}}},
        {diag::fault_kind::integrator_leak, {{0.02, signature(42.125)}}},
    };
    return dictionary;
}

TEST(SignatureSpace, DimensionsAndNamesAgree) {
    const auto space = paper_space();
    EXPECT_EQ(space.dimensions(), 3u + 3u + 3u + 1u);
    const auto names = space.component_names();
    ASSERT_EQ(names.size(), space.dimensions());
    EXPECT_EQ(names.front(), "stimulus_volts");
    EXPECT_EQ(names[3], "gain_db@200");
    EXPECT_EQ(names[6], "phase_deg@200");
    EXPECT_EQ(names.back(), "thd3_db@200");
    EXPECT_EQ(space.component_floors().size(), space.dimensions());
}

TEST(SignatureSpace, ParseInvertsComponentNames) {
    for (std::size_t thd : {std::size_t{0}, std::size_t{3}}) {
        const auto space = paper_space(thd);
        EXPECT_EQ(diag::signature_space::parse(space.component_names()), space);
    }
}

TEST(SignatureSpace, ParseRejectsMalformedNames) {
    EXPECT_THROW(diag::signature_space::parse(std::vector<std::string>{"bogus"}),
                 configuration_error);
    EXPECT_THROW(diag::signature_space::parse(std::vector<std::string>{"gain_db@abc"}),
                 configuration_error);
    EXPECT_THROW(diag::signature_space::parse(std::vector<std::string>{"thd3@200"}),
                 configuration_error);
    // Harmonic counts that would be cast UB or nonsense: rejected before
    // any cast.
    for (const char* name : {"thd-3_db@200", "thd1_db@200", "thd1e300_db@200",
                             "thd2.5_db@200"}) {
        EXPECT_THROW(diag::signature_space::parse(std::vector<std::string>{name}),
                     configuration_error)
            << name;
    }
    // Gain and phase frequency lists must agree.
    EXPECT_THROW(diag::signature_space::parse(
                     std::vector<std::string>{"gain_db@200", "phase_deg@300"}),
                 configuration_error);
}

TEST(FaultDictionary, CsvRoundTripsBitExactly) {
    const auto dictionary = synthetic_dictionary();
    temp_csv file("bistna_fault_dictionary_roundtrip.csv");
    dictionary.write_csv(file.path());
    const auto reloaded = diag::fault_dictionary::read_csv(file.path());
    EXPECT_EQ(reloaded, dictionary); // operator== is element-wise on doubles
}

TEST(FaultDictionary, CsvGroupsConsecutiveRowsIntoTrajectories) {
    const auto doc = synthetic_dictionary().to_csv();
    ASSERT_GE(doc.rows.size(), 5u);
    EXPECT_EQ(doc.header[0], "fault_kind");
    EXPECT_EQ(doc.header[1], "trajectory");
    EXPECT_EQ(doc.header[2], "severity");
    EXPECT_EQ(doc.rows.front()[0], -1.0); // healthy row

    const auto parsed = diag::fault_dictionary::from_csv(doc);
    ASSERT_EQ(parsed.trajectories.size(), 2u);
    EXPECT_EQ(parsed.trajectories[0].points.size(), 3u);
    EXPECT_EQ(parsed.trajectories[1].points.size(), 1u);
    EXPECT_EQ(parsed.trajectories[1].kind, diag::fault_kind::integrator_leak);
}

TEST(FaultDictionary, TwoTrajectoriesOfTheSameKindSurviveTheRoundTrip) {
    // E.g. the two branches of a signed severity axis, stored as separate
    // polylines: the trajectory id column must keep them apart even though
    // their rows are adjacent with the same fault kind.
    auto dictionary = synthetic_dictionary();
    dictionary.trajectories = {
        {diag::fault_kind::cap_unit_mismatch,
         {{-0.5, dictionary.healthy}, {-0.25, dictionary.trajectories[0].points[0].signature}}},
        {diag::fault_kind::cap_unit_mismatch,
         {{0.25, dictionary.trajectories[0].points[1].signature},
          {0.5, dictionary.trajectories[0].points[2].signature}}},
    };
    const auto reloaded = diag::fault_dictionary::from_csv(dictionary.to_csv());
    EXPECT_EQ(reloaded, dictionary);
    ASSERT_EQ(reloaded.trajectories.size(), 2u);
}

TEST(FaultDictionary, FromCsvRejectsMalformedDocuments) {
    auto doc = synthetic_dictionary().to_csv();
    auto bad_header = doc;
    bad_header.header[0] = "kind";
    EXPECT_THROW(diag::fault_dictionary::from_csv(bad_header), configuration_error);

    // Out-of-range, fractional, or non-finite fault-kind cells (shipped
    // CSVs are untrusted input) are rejected before any cast.
    for (double cell : {99.0, -2.0, 1.5, 1.0e18,
                        std::numeric_limits<double>::quiet_NaN()}) {
        auto bad_kind = doc;
        bad_kind.rows[1][0] = cell;
        EXPECT_THROW(diag::fault_dictionary::from_csv(bad_kind), configuration_error)
            << cell;
    }

    auto bad_width = doc;
    bad_width.rows[1].pop_back();
    EXPECT_THROW(diag::fault_dictionary::from_csv(bad_width), configuration_error);

    auto two_healthy = doc;
    two_healthy.rows.push_back(two_healthy.rows.front());
    EXPECT_THROW(diag::fault_dictionary::from_csv(two_healthy), configuration_error);

    // Signatures are positional: a header whose (individually valid)
    // component columns are out of canonical order would scramble every
    // signature and must be rejected, not silently accepted.
    auto reordered = doc;
    std::swap(reordered.header[3], reordered.header[4]);
    EXPECT_THROW(diag::fault_dictionary::from_csv(reordered), configuration_error);
}

TEST(SignatureSpace, FromReportRequiresDiagnosticData) {
    const auto space = paper_space();
    core::screening_report report;
    report.stimulus_volts = 0.3;
    // No limits measured (non-diagnostic early return): extraction refuses.
    EXPECT_THROW(space.from_report(report), configuration_error);
}

TEST(SignatureSpace, FromReportExtractsComponentsInOrder) {
    const auto space = paper_space();
    const auto mask = core::spec_mask::paper_lowpass();
    core::screening_report report;
    report.stimulus_volts = 0.302;
    report.stimulus_phase_deg = 103.5;
    report.offset_rate = 0.01;
    for (std::size_t i = 0; i < mask.limits.size(); ++i) {
        core::limit_result result;
        result.limit = mask.limits[i];
        result.limit_index = i;
        result.measured_db = -3.0 - static_cast<double>(i);
        result.phase_deg = -45.0 * static_cast<double>(i + 1);
        report.limits.push_back(result);
    }
    report.distortion_measured = true;
    report.thd_db = -55.5;
    report.thd_f_hz = 200.0;

    const auto signature = space.from_report(report);
    ASSERT_EQ(signature.size(), space.dimensions());
    EXPECT_EQ(signature[0], 0.302);
    EXPECT_EQ(signature[1], 103.5);
    EXPECT_EQ(signature[2], 0.01);
    EXPECT_EQ(signature[3], -3.0);   // gain@200
    EXPECT_EQ(signature[6], -45.0);  // phase@200
    EXPECT_EQ(signature.back(), -55.5);

    // A space whose thd_f_hz was left at the 0-means-default resolves it
    // exactly like screening does (first frequency), so extraction still
    // finds the measurement.
    auto defaulted = space;
    defaulted.thd_f_hz = 0.0;
    EXPECT_EQ(defaulted.resolved_thd_f_hz(), 200.0);
    EXPECT_EQ(defaulted.screening_options().distortion_f_hz, 200.0);
    EXPECT_EQ(defaulted.from_report(report).back(), -55.5);
}

TEST(SignatureSpace, ExtractionSanitizesUnboundedReadings) {
    const auto space = paper_space();
    const auto mask = core::spec_mask::paper_lowpass();
    core::screening_report report;
    report.stimulus_volts = 0.0; // dead stimulus
    for (std::size_t i = 0; i < mask.limits.size(); ++i) {
        core::limit_result result;
        result.limit = mask.limits[i];
        result.measured_db = i == 0 ? -std::numeric_limits<double>::infinity()
                                    : std::numeric_limits<double>::quiet_NaN();
        report.limits.push_back(result);
    }
    report.distortion_measured = true;
    report.thd_db = std::numeric_limits<double>::infinity();
    report.thd_f_hz = 200.0;

    const auto signature = space.from_report(report);
    for (double component : signature) {
        EXPECT_TRUE(std::isfinite(component));
    }
    EXPECT_EQ(signature[3], diag::signature_space::gain_clamp_db);
    EXPECT_EQ(signature.back(), -diag::signature_space::thd_clamp_db);
}

} // namespace
