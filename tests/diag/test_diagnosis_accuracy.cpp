// End-to-end localization accuracy (the subsystem's acceptance gate): on
// Monte Carlo lots with injected single faults at severities inside the
// dictionary range, the classifier must rank the true fault first for at
// least 90 % of the dice that fail screening.  Everything is seeded, so
// the measured accuracy is a deterministic property of the build.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "core/screening.hpp"
#include "diag/classifier.hpp"
#include "diag/diagnose.hpp"
#include "diag/fault_model.hpp"
#include "diag/trajectory_builder.hpp"

namespace {

using namespace bistna;

constexpr std::size_t kDicePerCell = 5;
constexpr double kComponentSigma = 0.02;

TEST(DiagnosisAccuracy, TrueFaultRanksFirstForAtLeastNinetyPercentOfFailingDice) {
    const diag::die_design design;
    const core::analyzer_settings settings;
    const auto mask = core::spec_mask::paper_lowpass();
    const auto catalog = diag::default_catalog();
    const auto space = diag::signature_space::from_mask(mask, /*thd_max_harmonic=*/3);

    diag::trajectory_build_options build;
    build.grid_points = 9;
    build.batch_lanes = 8;
    const diag::classifier clf(
        diag::build_dictionary(design, settings, space, catalog, build));

    std::size_t failing = 0;
    std::size_t top1 = 0;
    std::size_t ambiguous = 0;
    for (const auto& spec : catalog) {
        // One low and one high severity per fault, both inside the grid.
        for (double fraction : {0.25, 11.0 / 12.0}) {
            const double severity =
                spec.severity_min + fraction * (spec.severity_max - spec.severity_min);
            diag::die_design faulty = design;
            faulty.dut_tolerance_sigma = kComponentSigma;
            core::analyzer_settings faulty_settings = settings;
            diag::apply_fault(spec.kind, severity, faulty, faulty_settings);

            const auto diagnosed = diag::screen_and_diagnose_lot(
                faulty.factory(), faulty_settings, mask, clf, kDicePerCell,
                /*first_seed=*/2000 + static_cast<std::uint64_t>(fraction * 100.0),
                /*threads=*/0, /*batch_lanes=*/4);
            for (const auto& die : diagnosed.failing) {
                ++failing;
                ASSERT_FALSE(die.result.ranked.empty());
                if (die.result.ranked.front().kind == spec.kind) {
                    ++top1;
                    // The severity estimate must land in the right region
                    // of the trajectory, not just the right fault.
                    EXPECT_LE(std::abs(die.result.ranked.front().severity - severity),
                              0.35 * (spec.severity_max - spec.severity_min))
                        << diag::fault_name(spec.kind) << " at severity " << severity;
                }
                for (const auto& hypothesis : die.result.ambiguity) {
                    if (hypothesis.kind == spec.kind) {
                        ++ambiguous;
                        break;
                    }
                }
            }
        }
    }

    // A meaningful denominator: a healthy-leaning configuration that fails
    // almost nothing would make the accuracy ratio vacuous.
    ASSERT_GE(failing, 20u);
    const double accuracy = static_cast<double>(top1) / static_cast<double>(failing);
    EXPECT_GE(accuracy, 0.9) << top1 << "/" << failing << " failing dice localized";
    // The ambiguity set is a superset signal: it must hold the true fault
    // at least as often as top-1 does.
    EXPECT_GE(ambiguous, top1);
}

TEST(DiagnosisAccuracy, FaultFreeLotYieldsNoFalseDiagnoses) {
    const diag::die_design design;
    const core::analyzer_settings settings;
    const auto mask = core::spec_mask::paper_lowpass();
    const auto space = diag::signature_space::from_mask(mask, /*thd_max_harmonic=*/3);

    diag::trajectory_build_options build;
    build.grid_points = 5;
    build.batch_lanes = 8;
    const diag::classifier clf(
        diag::build_dictionary(design, settings, space, diag::default_catalog(), build));

    diag::die_design healthy = design;
    healthy.dut_tolerance_sigma = kComponentSigma;
    const auto control =
        diag::screen_and_diagnose_lot(healthy.factory(), settings, mask, clf,
                                      /*dice=*/12, /*first_seed=*/7000,
                                      /*threads=*/0, /*batch_lanes=*/4);
    // 2 % components against the paper mask: this seeded lot passes
    // entirely, so nothing reaches the classifier.
    EXPECT_EQ(control.failing.size(), 0u);
    EXPECT_EQ(control.lot.passed, control.lot.dice);
}

} // namespace
