// Dictionary construction through the sweep engine's generic acquisition:
// structure of the built dictionary, bit-identity of the batched build
// against the scalar reference at any thread/lane count, and consistency
// between builder-side and report-side signature extraction.
#include <gtest/gtest.h>

#include "core/screening.hpp"
#include "core/sweep_engine.hpp"
#include "diag/classifier.hpp"
#include "diag/trajectory_builder.hpp"

namespace {

using namespace bistna;

/// Reduced acquisition lengths: the suites below compare builds against
/// each other, so absolute accuracy doesn't matter -- wall clock does.
core::analyzer_settings fast_settings() {
    core::analyzer_settings settings;
    settings.periods = 48;
    settings.distortion_periods = 96;
    settings.settle_periods = 16;
    settings.evaluator.calibration_periods = 256;
    return settings;
}

diag::trajectory_build_options fast_build(std::size_t threads, std::size_t lanes) {
    diag::trajectory_build_options options;
    options.grid_points = 4;
    options.threads = threads;
    options.batch_lanes = lanes;
    return options;
}

const std::vector<diag::fault_spec> kTwoFaults = {
    {diag::fault_kind::biquad_cap_drift, -0.2, 0.2, "relative"},
    {diag::fault_kind::integrator_leak, 0.0, 0.02, "leak"},
};

TEST(TrajectoryBuilder, BuildsOneTrajectoryPerFaultOnTheSeverityGrid) {
    const auto space = diag::signature_space::from_mask(core::spec_mask::paper_lowpass(), 3);
    const auto dictionary = diag::build_dictionary(diag::die_design{}, fast_settings(),
                                                   space, kTwoFaults, fast_build(1, 1));

    EXPECT_EQ(dictionary.space, space);
    EXPECT_EQ(dictionary.healthy.size(), space.dimensions());
    ASSERT_EQ(dictionary.trajectories.size(), kTwoFaults.size());
    for (std::size_t j = 0; j < kTwoFaults.size(); ++j) {
        const auto& trajectory = dictionary.trajectories[j];
        EXPECT_EQ(trajectory.kind, kTwoFaults[j].kind);
        ASSERT_EQ(trajectory.points.size(), 4u);
        EXPECT_DOUBLE_EQ(trajectory.points.front().severity, kTwoFaults[j].severity_min);
        EXPECT_DOUBLE_EQ(trajectory.points.back().severity, kTwoFaults[j].severity_max);
        for (const auto& point : trajectory.points) {
            EXPECT_EQ(point.signature.size(), space.dimensions());
        }
    }
}

TEST(TrajectoryBuilder, BatchedBuildIsBitIdenticalToScalar) {
    const auto space = diag::signature_space::from_mask(core::spec_mask::paper_lowpass(), 3);
    const auto scalar = diag::build_dictionary(diag::die_design{}, fast_settings(), space,
                                               kTwoFaults, fast_build(1, 1));
    for (std::size_t lanes : {std::size_t{3}, std::size_t{8}}) {
        const auto batched = diag::build_dictionary(diag::die_design{}, fast_settings(),
                                                    space, kTwoFaults, fast_build(2, lanes));
        EXPECT_EQ(batched, scalar) << "lanes = " << lanes;
    }
}

TEST(TrajectoryBuilder, BuildIsThreadCountInvariant) {
    const auto space = diag::signature_space::from_mask(core::spec_mask::paper_lowpass());
    const auto one = diag::build_dictionary(diag::die_design{}, fast_settings(), space,
                                            kTwoFaults, fast_build(1, 4));
    const auto four = diag::build_dictionary(diag::die_design{}, fast_settings(), space,
                                             kTwoFaults, fast_build(4, 4));
    EXPECT_EQ(one, four);
}

TEST(TrajectoryBuilder, SinglePointGridUsesSeverityMin) {
    const auto space = diag::signature_space::from_mask(core::spec_mask::paper_lowpass());
    auto options = fast_build(1, 1);
    options.grid_points = 1;
    const auto dictionary = diag::build_dictionary(diag::die_design{}, fast_settings(),
                                                   space, kTwoFaults, options);
    for (std::size_t j = 0; j < kTwoFaults.size(); ++j) {
        ASSERT_EQ(dictionary.trajectories[j].points.size(), 1u);
        EXPECT_DOUBLE_EQ(dictionary.trajectories[j].points.front().severity,
                         kTwoFaults[j].severity_min);
    }
}

// The dictionary's healthy signature and a diagnostic screening report of
// the same die must describe the same physical quantities: classifying the
// nominal die's own report lands within the healthy threshold.
TEST(TrajectoryBuilder, ReportSignatureIsCommensurateWithDictionary) {
    // Production acquisition lengths: the healthy-distance bound below is a
    // statement about real measurement noise, which the shortened suites
    // above would inflate.
    const core::analyzer_settings settings;
    const auto mask = core::spec_mask::paper_lowpass();
    const auto space = diag::signature_space::from_mask(mask, 3);
    const diag::die_design design;
    diag::trajectory_build_options options = fast_build(0, 4);
    options.grid_points = 5;
    const auto dictionary =
        diag::build_dictionary(design, settings, space,
                               {{diag::fault_kind::integrator_leak, 0.0, 0.02, "leak"}},
                               options);
    const diag::classifier clf(dictionary);

    auto board = design.factory()(options.nominal_seed);
    core::network_analyzer analyzer(board, settings);
    const auto report = core::screen(analyzer, mask, space.screening_options());
    ASSERT_TRUE(report.passed);
    const auto result = clf.classify_report(report);
    EXPECT_FALSE(result.fault_detected);
    EXPECT_LT(result.healthy_distance, clf.options().healthy_threshold);
}

// The generic acquisition path itself: lanes = 1 (scalar evaluator) and
// lanes > 1 (modulator bank) agree bit-for-bit, with and without shared
// render keys.
TEST(SweepEngineAcquire, LanesAndRenderSharingAreBitIdentical) {
    const auto settings = fast_settings();
    const diag::die_design design;

    core::sweep_engine::acquisition_program program;
    program.frequencies = {hertz{200.0}, hertz{1000.0}};
    program.distortion_max_harmonic = 3;
    program.distortion_f = hertz{200.0};

    const auto make_items = [&](std::uint64_t render_key) {
        std::vector<core::sweep_engine::acquisition_item> items(5);
        for (std::size_t i = 0; i < items.size(); ++i) {
            items[i].make_board = [factory = design.factory()] { return factory(1); };
            items[i].evaluator = settings.evaluator;
            items[i].evaluator.seed = core::sweep_item_seed(7, i);
            items[i].render_key = render_key;
        }
        return items;
    };

    const auto run = [&](std::size_t lanes, std::uint64_t render_key) {
        core::sweep_engine_options options;
        options.threads = 2;
        options.batch_lanes = lanes;
        core::sweep_engine engine(design.factory(), settings, options);
        return engine.acquire(make_items(render_key), program);
    };

    const auto reference = run(1, 0);
    for (std::size_t lanes : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
        for (std::uint64_t key : {std::uint64_t{0}, std::uint64_t{0xABCD}}) {
            const auto results = run(lanes, key);
            ASSERT_EQ(results.size(), reference.size());
            for (std::size_t i = 0; i < results.size(); ++i) {
                EXPECT_EQ(results[i].calibration.amplitude.volts,
                          reference[i].calibration.amplitude.volts);
                EXPECT_EQ(results[i].calibration.phase.radians,
                          reference[i].calibration.phase.radians);
                EXPECT_EQ(results[i].offset_rate, reference[i].offset_rate);
                EXPECT_EQ(results[i].has_thd, reference[i].has_thd);
                EXPECT_EQ(results[i].thd_db, reference[i].thd_db);
                ASSERT_EQ(results[i].points.size(), reference[i].points.size());
                for (std::size_t p = 0; p < results[i].points.size(); ++p) {
                    EXPECT_EQ(results[i].points[p].gain_db, reference[i].points[p].gain_db);
                    EXPECT_EQ(results[i].points[p].phase_deg,
                              reference[i].points[p].phase_deg);
                }
            }
        }
    }
}

} // namespace
