// Fault catalog and injection: every fault lands in the layer it claims to
// (generator design vs. evaluator modulator), severity 0 is a no-op, and
// the injected deviations are visible to the stimulus-cache fingerprint so
// faulty and healthy boards can never share a cached record.
#include <gtest/gtest.h>

#include "diag/fault_model.hpp"
#include "gen/generator.hpp"
#include "sc/opamp.hpp"
#include "sd/modulator.hpp"

namespace {

using namespace bistna;

TEST(FaultModel, CatalogCoversEveryKindOnce) {
    const auto catalog = diag::default_catalog();
    ASSERT_EQ(catalog.size(), diag::fault_kind_count);
    for (std::size_t i = 0; i < catalog.size(); ++i) {
        EXPECT_EQ(static_cast<int>(catalog[i].kind), static_cast<int>(i));
        EXPECT_LT(catalog[i].severity_min, catalog[i].severity_max);
        EXPECT_FALSE(catalog[i].unit.empty());
        EXPECT_STRNE(diag::fault_name(catalog[i].kind), "unknown fault");
    }
}

TEST(FaultModel, GeneratorFaultsLandInTheDesign) {
    for (auto kind : {diag::fault_kind::cap_unit_mismatch, diag::fault_kind::biquad_cap_drift,
                      diag::fault_kind::opamp_degradation}) {
        diag::die_design design;
        core::analyzer_settings settings;
        const auto nominal_settings = settings;
        diag::apply_fault(kind, 0.1, design, settings);
        EXPECT_NE(design.generator.fingerprint(), diag::die_design{}.generator.fingerprint())
            << diag::fault_name(kind) << " must change the stimulus fingerprint";
        EXPECT_EQ(settings.evaluator.modulator.dc_gain_db,
                  nominal_settings.evaluator.modulator.dc_gain_db);
        EXPECT_EQ(settings.evaluator.modulator.comparator_offset,
                  nominal_settings.evaluator.modulator.comparator_offset);
    }
}

TEST(FaultModel, EvaluatorFaultsLandInTheModulator) {
    for (auto kind :
         {diag::fault_kind::integrator_leak, diag::fault_kind::comparator_offset}) {
        diag::die_design design;
        core::analyzer_settings settings;
        diag::apply_fault(kind, 0.01, design, settings);
        EXPECT_EQ(design.generator.fingerprint(), diag::die_design{}.generator.fingerprint())
            << diag::fault_name(kind) << " must not touch the generator";
    }

    core::analyzer_settings settings;
    diag::die_design design;
    diag::apply_fault(diag::fault_kind::integrator_leak, 0.01, design, settings);
    EXPECT_NEAR(1.0 - settings.evaluator.modulator.integrator_leak(), 0.01, 1e-12);

    core::analyzer_settings offset_settings;
    diag::apply_fault(diag::fault_kind::comparator_offset, 0.25, design, offset_settings);
    EXPECT_DOUBLE_EQ(offset_settings.evaluator.modulator.comparator_offset, 0.25);
    EXPECT_DOUBLE_EQ(offset_settings.evaluator.modulator.input_offset, 0.25);
}

TEST(FaultModel, ZeroSeverityIsANoOp) {
    for (const auto& spec : diag::default_catalog()) {
        diag::die_design design;
        core::analyzer_settings settings;
        const auto nominal = diag::die_design{};
        diag::apply_fault(spec.kind, 0.0, design, settings);
        EXPECT_EQ(design.generator.fingerprint(), nominal.generator.fingerprint())
            << diag::fault_name(spec.kind);
        EXPECT_EQ(settings.evaluator.modulator.integrator_leak(),
                  core::analyzer_settings{}.evaluator.modulator.integrator_leak());
        EXPECT_EQ(settings.evaluator.modulator.comparator_offset,
                  core::analyzer_settings{}.evaluator.modulator.comparator_offset);
    }
}

TEST(FaultModel, CapFaultDeviatesExactlyOneDrawnLevel) {
    gen::generator_params nominal;
    gen::generator_params faulty = nominal;
    faulty.cap_fault_index = 2;
    faulty.cap_fault_delta = 0.25;

    const gen::sinewave_generator reference(nominal);
    const gen::sinewave_generator injected(faulty);
    for (std::size_t k = 1; k < gen::level_count; ++k) {
        const double expected = k == 2 ? reference.array().level(k) * 1.25
                                       : reference.array().level(k);
        EXPECT_DOUBLE_EQ(injected.array().level(k), expected) << "level " << k;
    }
    // Same process draw otherwise: the biquad caps are untouched.
    EXPECT_DOUBLE_EQ(injected.drawn_caps().b, reference.drawn_caps().b);
}

TEST(FaultModel, OpampDegradationMovesGainSettlingAndNonlinearity) {
    const auto healthy = sc::opamp_params::folded_cascode_035();
    const auto dying = healthy.degraded(0.5);
    EXPECT_LT(dying.dc_gain_db, healthy.dc_gain_db);
    EXPECT_GT(dying.settling_error, healthy.settling_error);
    EXPECT_GT(dying.hd3, healthy.hd3);
    const auto same = healthy.degraded(0.0);
    EXPECT_DOUBLE_EQ(same.dc_gain_db, healthy.dc_gain_db);
    EXPECT_DOUBLE_EQ(same.settling_error, healthy.settling_error);
    EXPECT_DOUBLE_EQ(same.hd3, healthy.hd3);
}

TEST(FaultModel, LeakGainMappingInvertsIntegratorLeak) {
    for (double leak : {1e-5, 1e-3, 0.02, 0.05}) {
        sd::modulator_params params = sd::modulator_params::ideal();
        params.dc_gain_db = sd::modulator_params::dc_gain_db_for_leak(leak, params.ci_over_cf);
        // A few ulps of log10/pow round trip.
        EXPECT_NEAR(1.0 - params.integrator_leak(), leak, leak * 1e-10);
    }
}

TEST(FaultModel, FactoryVariesOnlyTheDutAcrossSeeds) {
    diag::die_design design;
    design.dut_tolerance_sigma = 0.05;
    const auto factory = design.factory();
    auto board_a = factory(1);
    auto board_b = factory(2);
    EXPECT_EQ(board_a.generator_params().fingerprint(),
              board_b.generator_params().fingerprint());
    EXPECT_NE(board_a.dut().ideal_response(1000.0), board_b.dut().ideal_response(1000.0));
}

} // namespace
