#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>

#include "ate/capture.hpp"
#include "ate/multitone.hpp"
#include "common/math_util.hpp"
#include "dsp/goertzel.hpp"

namespace {

using namespace bistna;

TEST(Multitone, Fig9StimulusComposition) {
    const auto stimulus = ate::multitone_source::fig9_stimulus();
    ASSERT_EQ(stimulus.tones().size(), 3u);
    EXPECT_DOUBLE_EQ(stimulus.tones()[0].amplitude, 0.2);
    EXPECT_DOUBLE_EQ(stimulus.tones()[1].amplitude, 0.02);
    EXPECT_DOUBLE_EQ(stimulus.tones()[2].amplitude, 0.002);

    // Coherent extraction of each tone from the generated record.
    const auto record = ate::capture_waveform(stimulus.as_source(), 96 * 100);
    for (std::size_t k = 1; k <= 3; ++k) {
        const double amplitude =
            dsp::estimate_tone(record, static_cast<double>(k) / 96.0, 1.0).amplitude;
        EXPECT_NEAR(amplitude, stimulus.tones()[k - 1].amplitude, 1e-12) << "k=" << k;
    }
}

TEST(Multitone, DcOffsetIncluded) {
    ate::multitone_source source({ate::tone{1, 0.1, 0.0}}, 96, 0.25);
    double mean = 0.0;
    const std::size_t n = 96 * 10;
    for (std::size_t i = 0; i < n; ++i) {
        mean += source.sample(i);
    }
    EXPECT_NEAR(mean / static_cast<double>(n), 0.25, 1e-12);
}

TEST(Multitone, PeriodicInN) {
    const auto stimulus = ate::multitone_source::fig9_stimulus();
    for (std::size_t n = 0; n < 96; ++n) {
        EXPECT_NEAR(stimulus.sample(n), stimulus.sample(n + 96), 1e-12);
    }
}

TEST(Multitone, NoiseIsSeededAndBounded) {
    ate::multitone_source a({ate::tone{1, 0.1, 0.0}}, 96);
    a.set_noise(1e-3, 42);
    ate::multitone_source b({ate::tone{1, 0.1, 0.0}}, 96);
    b.set_noise(1e-3, 42);
    for (std::size_t n = 0; n < 100; ++n) {
        EXPECT_DOUBLE_EQ(a.sample(n), b.sample(n));
    }
}

TEST(Multitone, RejectsAboveNyquist) {
    EXPECT_THROW(ate::multitone_source({ate::tone{48, 0.1, 0.0}}, 96), precondition_error);
}

TEST(Capture, BitstreamLengthAndValues) {
    sd::sd_modulator mod(sd::modulator_params::ideal());
    ate::multitone_source stimulus({ate::tone{1, 0.3, 0.0}}, 96);
    const auto bits = ate::capture_bitstream(mod, stimulus.as_source(), 960);
    ASSERT_EQ(bits.size(), 960u);
    for (int b : bits) {
        EXPECT_TRUE(b == 1 || b == -1);
    }
}

} // namespace
