#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/oscilloscope.hpp"
#include "common/math_util.hpp"

namespace {

using namespace bistna;
using baseline::oscilloscope;
using baseline::oscilloscope_params;

eval::sample_source distorted_tone(double fs) {
    return [fs](std::size_t n) {
        const double t = static_cast<double>(n) / fs;
        const double x = 0.4 * std::sin(two_pi * 1600.0 * t);
        return x + 0.4e-3 * std::sin(two_pi * 3200.0 * t + 0.4) +
               0.2e-3 * std::sin(two_pi * 4800.0 * t + 1.1);
    };
}

TEST(Oscilloscope, IdealScopeReadsConstructedHarmonics) {
    auto params = oscilloscope_params::ideal();
    params.record_length = 1 << 16;
    oscilloscope scope(params);
    const double fs = 96.0 * 1600.0;
    const auto record = scope.acquire(distorted_tone(fs), fs);
    const auto harmonics = scope.measure_harmonics(record, fs, 1600.0, 3);
    ASSERT_EQ(harmonics.harmonic_dbc.size(), 2u);
    EXPECT_NEAR(harmonics.fundamental_amplitude, 0.4, 0.005);
    EXPECT_NEAR(harmonics.harmonic_dbc[0], 20.0 * std::log10(0.4e-3 / 0.4), 0.5);
    EXPECT_NEAR(harmonics.harmonic_dbc[1], 20.0 * std::log10(0.2e-3 / 0.4), 0.7);
}

TEST(Oscilloscope, QuantizerLimitsFloor) {
    oscilloscope_params params; // 8-bit default
    params.record_length = 1 << 14;
    params.noise_rms = 0.0;
    oscilloscope scope(params);
    const double fs = 96.0 * 1600.0;
    // Clean tone: any reported distortion floor comes from the quantizer.
    const auto record = scope.acquire(
        [fs](std::size_t n) {
            return 0.4 * std::sin(two_pi * 1600.0 * static_cast<double>(n) / fs);
        },
        fs);
    const auto harmonics = scope.measure_harmonics(record, fs, 1600.0, 3);
    // 8-bit scope can't see below roughly -55..-60 dBc reliably.
    for (double dbc : harmonics.harmonic_dbc) {
        EXPECT_LT(dbc, -45.0);
    }
}

TEST(Oscilloscope, ClipsAtFullScale) {
    oscilloscope_params params = oscilloscope_params::ideal();
    params.full_scale = 0.5;
    params.record_length = 4096;
    oscilloscope scope(params);
    const auto record = scope.acquire([](std::size_t) { return 2.0; }, 1e6);
    for (double v : record) {
        EXPECT_LE(v, 0.5 + 1e-9);
    }
}

TEST(Oscilloscope, RejectsBadConfig) {
    oscilloscope_params params;
    params.full_scale = 0.0;
    EXPECT_THROW(oscilloscope s(params), precondition_error);
}

} // namespace
