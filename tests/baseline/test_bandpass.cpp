// The ref-[8] style analyzer: correct at moderate levels, floor-limited
// around -40 dBFS -- the comparison that motivates the paper's approach.
#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/bandpass_analyzer.hpp"
#include "common/math_util.hpp"

namespace {

using namespace bistna;
using baseline::bandpass_analyzer;
using baseline::bandpass_analyzer_params;

eval::sample_source tone_pair(double a1, double a3) {
    return [=](std::size_t n) {
        const double t = two_pi * static_cast<double>(n) / 96.0;
        return a1 * std::sin(t) + a3 * std::sin(3.0 * t + 0.5);
    };
}

TEST(BandpassAnalyzer, ReadsStrongToneAccurately) {
    bandpass_analyzer analyzer(bandpass_analyzer_params{});
    const auto m = analyzer.measure(tone_pair(0.5, 0.0), 1, 96);
    EXPECT_NEAR(m.amplitude, 0.5, 0.03);
}

TEST(BandpassAnalyzer, SmallHarmonicMaskedByFundamentalLeakage) {
    // -60 dBc harmonic beside a full-scale fundamental: the filter's
    // leakage + detector floor dominate the true 0.5 mV value.
    bandpass_analyzer analyzer(bandpass_analyzer_params{});
    const auto m = analyzer.measure(tone_pair(0.5, 0.0005), 3, 96);
    EXPECT_GT(m.amplitude, 0.002); // reads the floor, not the harmonic
}

TEST(BandpassAnalyzer, DynamicRangeIsAbout40Db) {
    // Find the smallest standalone tone the detector resolves within 3 dB.
    bandpass_analyzer_params params;
    bandpass_analyzer analyzer(params);
    double worst_resolved_dbfs = 0.0;
    for (double level_db = -20.0; level_db >= -70.0; level_db -= 10.0) {
        const double amplitude = std::pow(10.0, level_db / 20.0);
        const auto m = analyzer.measure(tone_pair(amplitude, 0.0), 1, 96);
        const double error_db = std::abs(20.0 * std::log10(std::max(m.amplitude, 1e-9) /
                                                           amplitude));
        if (error_db < 3.0) {
            worst_resolved_dbfs = level_db;
        }
    }
    // Resolves around -40 dB but NOT -60 dB and below.
    EXPECT_LE(worst_resolved_dbfs, -30.0);
    EXPECT_GE(worst_resolved_dbfs, -55.0);
}

TEST(BandpassAnalyzer, Validation) {
    bandpass_analyzer analyzer(bandpass_analyzer_params{});
    EXPECT_THROW((void)analyzer.measure(tone_pair(0.1, 0.0), 0, 96), precondition_error);
    EXPECT_THROW((void)analyzer.measure(tone_pair(0.1, 0.0), 50, 96), precondition_error);
    bandpass_analyzer_params bad;
    bad.filter_q = 0.1;
    EXPECT_THROW(bandpass_analyzer a(bad), precondition_error);
}

} // namespace
