#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/dft_analyzer.hpp"
#include "common/math_util.hpp"

namespace {

using namespace bistna;
using baseline::dft_analyzer;

TEST(DftAnalyzer, MeasuresCoherentHarmonic) {
    std::vector<double> record(96 * 64);
    for (std::size_t n = 0; n < record.size(); ++n) {
        record[n] = 0.25 * std::cos(two_pi * 2.0 * static_cast<double>(n) / 96.0 + 0.7);
    }
    dft_analyzer analyzer;
    const auto point = analyzer.measure(record, 2, 96);
    EXPECT_NEAR(point.amplitude, 0.25, 1e-12);
    EXPECT_NEAR(point.phase_rad, 0.7, 1e-12);
}

TEST(DftAnalyzer, TransferBetweenRecords) {
    std::vector<double> in(96 * 32), out(96 * 32);
    for (std::size_t n = 0; n < in.size(); ++n) {
        const double t = two_pi * static_cast<double>(n) / 96.0;
        in[n] = 0.5 * std::cos(t);
        out[n] = 0.25 * std::cos(t - 0.9); // gain 0.5, lag 0.9 rad
    }
    dft_analyzer analyzer;
    const auto gp = analyzer.transfer(in, out, 1, 96);
    EXPECT_NEAR(gp.gain, 0.5, 1e-12);
    EXPECT_NEAR(gp.gain_db, -6.0206, 1e-3);
    EXPECT_NEAR(gp.phase_rad, -0.9, 1e-12);
}

TEST(DftAnalyzer, NonIntegerPeriodsRejected) {
    dft_analyzer analyzer;
    std::vector<double> record(100); // not a multiple of 96
    EXPECT_THROW((void)analyzer.measure(record, 1, 96), precondition_error);
}

TEST(DftAnalyzer, ZeroInputTransferRejected) {
    dft_analyzer analyzer;
    std::vector<double> zeros(96 * 4, 0.0);
    std::vector<double> out(96 * 4, 0.0);
    EXPECT_THROW((void)analyzer.transfer(zeros, out, 1, 96), precondition_error);
}

} // namespace
