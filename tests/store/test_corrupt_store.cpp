// Every way a store file can rot -- torn writes, flipped bits, foreign
// files -- must surface as a typed serialization_error naming the byte
// offset of the damage.  A corrupt store is never silently read back.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/screening.hpp"
#include "store/format.hpp"
#include "store/lot_store.hpp"
#include "store/record_io.hpp"
#include "store/records.hpp"

namespace {

using namespace bistna;

class temp_file {
public:
    explicit temp_file(const char* name) : path_(std::string("/tmp/") + name) {
        std::remove(path_.c_str());
    }
    ~temp_file() { std::remove(path_.c_str()); }
    const std::string& path() const { return path_; }

private:
    std::string path_;
};

std::vector<std::uint8_t> slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<std::uint8_t>& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

core::screening_report small_report() {
    core::screening_report report;
    report.passed = true;
    report.self_test_passed = true;
    report.stimulus_volts = 0.3;
    core::limit_result result;
    result.limit.name = "lp";
    result.measured_db = -1.0;
    report.limits.push_back(result);
    return report;
}

/// A valid two-record store plus the frame boundaries inside it.
struct valid_store {
    std::vector<std::uint8_t> bytes;
    std::uint64_t frame0 = 0; ///< offset of the first frame
    std::uint64_t frame1 = 0; ///< offset of the second frame
};

valid_store build_valid_store(const std::string& path) {
    valid_store built;
    store::record_writer writer(path);
    built.frame0 = writer.bytes_written();
    EXPECT_EQ(built.frame0, store::file_header_size);
    writer.append(store::to_record(small_report(), 0));
    built.frame1 = writer.bytes_written();
    writer.append(store::to_record(small_report(), 1));
    writer.flush();
    built.bytes = slurp(path);
    EXPECT_EQ(built.bytes.size(), writer.bytes_written());
    return built;
}

/// Asserts that reading `path` throws serialization_error at exactly
/// `offset`, and that the what() string names that offset.
void expect_rejected_at(const std::string& path, std::uint64_t offset) {
    try {
        (void)store::record_reader::read_all(path);
        FAIL() << "corrupt store was accepted";
    } catch (const serialization_error& error) {
        EXPECT_EQ(error.byte_offset(), offset) << error.what();
        EXPECT_NE(std::string(error.what()).find("byte offset " + std::to_string(offset)),
                  std::string::npos)
            << error.what();
    }
}

TEST(CorruptStore, ZeroLengthFileIsRejected) {
    temp_file file("bistna_corrupt_empty.bin");
    spit(file.path(), {});
    expect_rejected_at(file.path(), 0);
}

TEST(CorruptStore, FileShorterThanHeaderIsRejected) {
    temp_file file("bistna_corrupt_short.bin");
    spit(file.path(), {0x42, 0x53, 0x54, 0x52, 0x01, 0x00, 0x02});
    expect_rejected_at(file.path(), 7);
}

TEST(CorruptStore, WrongMagicIsRejected) {
    temp_file file("bistna_corrupt_magic.bin");
    auto built = build_valid_store(file.path());
    built.bytes[0] ^= 0xFF; // no longer "BSTR"
    spit(file.path(), built.bytes);
    expect_rejected_at(file.path(), 0);
}

TEST(CorruptStore, WrongVersionIsRejected) {
    temp_file file("bistna_corrupt_version.bin");
    auto built = build_valid_store(file.path());
    built.bytes[4] = 0x7F; // future format version
    spit(file.path(), built.bytes);
    expect_rejected_at(file.path(), 4);
}

TEST(CorruptStore, WrongEndiannessIsRejected) {
    temp_file file("bistna_corrupt_endian.bin");
    auto built = build_valid_store(file.path());
    std::swap(built.bytes[6], built.bytes[7]); // byte-swapped endian tag
    spit(file.path(), built.bytes);
    expect_rejected_at(file.path(), 6);
}

TEST(CorruptStore, HeaderCrcMismatchIsRejected) {
    temp_file file("bistna_corrupt_hdrcrc.bin");
    auto built = build_valid_store(file.path());
    built.bytes[8] ^= 0x01; // reserved field no longer matches the CRC
    spit(file.path(), built.bytes);
    expect_rejected_at(file.path(), 12);
}

TEST(CorruptStore, TruncatedFrameHeaderIsRejected) {
    temp_file file("bistna_corrupt_tornhdr.bin");
    auto built = build_valid_store(file.path());
    // Kill the process three bytes into the second frame's header.
    built.bytes.resize(built.frame1 + 3);
    spit(file.path(), built.bytes);
    expect_rejected_at(file.path(), built.frame1);
}

TEST(CorruptStore, TruncatedFinalFramePayloadIsRejected) {
    temp_file file("bistna_corrupt_tornpayload.bin");
    auto built = build_valid_store(file.path());
    // Kill the process mid-payload: the declared length now runs past the
    // end of the file, which the reader reports against the length field.
    built.bytes.resize(built.frame1 + store::frame_header_size + 5);
    spit(file.path(), built.bytes);
    expect_rejected_at(file.path(), built.frame1 + 4);
}

TEST(CorruptStore, FlippedPayloadByteFailsFrameCrc) {
    temp_file file("bistna_corrupt_bitflip.bin");
    auto built = build_valid_store(file.path());
    built.bytes[built.frame1 + store::frame_header_size + 2] ^= 0x10;
    spit(file.path(), built.bytes);
    expect_rejected_at(file.path(), built.frame1);
}

TEST(CorruptStore, FlippedLengthByteIsRejectedBeforeAllocation) {
    temp_file file("bistna_corrupt_length.bin");
    auto built = build_valid_store(file.path());
    built.bytes[built.frame0 + 7] = 0x7F; // length now ~2 GiB
    spit(file.path(), built.bytes);
    expect_rejected_at(file.path(), built.frame0 + 4);
}

TEST(CorruptStore, ValidPrefixIsReadableUpToTheDamage) {
    temp_file file("bistna_corrupt_prefix.bin");
    auto built = build_valid_store(file.path());
    built.bytes[built.frame1 + store::frame_header_size + 1] ^= 0x01;
    spit(file.path(), built.bytes);

    store::record_reader reader(file.path());
    auto first = reader.next(); // frame 0 is intact
    ASSERT_TRUE(first.has_value());
    const auto restored = store::report_from_record(*first);
    EXPECT_EQ(restored.die, 0u);
    EXPECT_THROW((void)reader.next(), serialization_error);
}

TEST(CorruptStore, StrictScanRefusesForeignFiles) {
    temp_file file("bistna_corrupt_foreign.bin");
    spit(file.path(), {'d', 'i', 'e', ',', 'p', 'a', 's', 's', 'e', 'd', '\n',
                       '0', ',', '1', '\n', '1', ',', '0', '\n'});
    EXPECT_THROW((void)store::lot_store::scan(file.path()), serialization_error);
}

TEST(CorruptStore, TruncatedRecordPayloadFieldsAreRejected) {
    // Frame-level CRC passes, but the payload lies about its own counts:
    // a limit_count larger than the remaining bytes must be caught by the
    // converter, not crash it.
    auto record = store::to_record(small_report(), 7);
    record.payload.resize(16); // chop off everything after the die + flags
    EXPECT_THROW((void)store::report_from_record(record), serialization_error);

    auto truncated = store::to_record(small_report(), 7);
    truncated.payload.resize(truncated.payload.size() - 3);
    EXPECT_THROW((void)store::report_from_record(truncated), serialization_error);
}

} // namespace
