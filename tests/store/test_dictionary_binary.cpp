// Binary fault-dictionary files: copying round trip, the zero-copy
// mmap view, equivalence with the CSV schema, and corruption rejection.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "diag/fault_dictionary.hpp"
#include "store/dictionary_io.hpp"

namespace {

using namespace bistna;

class temp_file {
public:
    explicit temp_file(const char* name) : path_(std::string("/tmp/") + name) {
        std::remove(path_.c_str());
    }
    ~temp_file() { std::remove(path_.c_str()); }
    const std::string& path() const { return path_; }

private:
    std::string path_;
};

diag::signature_space test_space() {
    diag::signature_space space;
    space.frequencies_hz = {500.0, 1000.0};
    space.thd_max_harmonic = 3;
    space.thd_f_hz = 1000.0;
    return space;
}

/// A small dictionary with finite values only (safe for operator==).
diag::fault_dictionary finite_dictionary() {
    diag::fault_dictionary dictionary;
    dictionary.space = test_space();
    const auto dims = dictionary.space.dimensions();
    dictionary.healthy.assign(dims, 0.25);
    diag::fault_trajectory first;
    first.kind = diag::fault_kind::cap_unit_mismatch;
    for (int i = 0; i < 3; ++i) {
        diag::trajectory_point point;
        point.severity = 0.01 * (i + 1);
        point.signature.assign(dims, 0.1 * (i + 1));
        point.signature[0] = 0.3 + 1e-17 * i; // exercise shortest-repr digits
        first.points.push_back(point);
    }
    diag::fault_trajectory second;
    second.kind = diag::fault_kind::integrator_leak;
    for (int i = 0; i < 2; ++i) {
        diag::trajectory_point point;
        point.severity = 1e-4 * (i + 1);
        point.signature.assign(dims, -70.0 + i);
        second.points.push_back(point);
    }
    dictionary.trajectories.push_back(std::move(first));
    dictionary.trajectories.push_back(std::move(second));
    return dictionary;
}

TEST(DictionaryBinary, WriteReadRoundTrip) {
    temp_file file("bistna_dict_roundtrip.bin");
    const auto dictionary = finite_dictionary();
    dictionary.write_binary(file.path());
    const auto restored = diag::fault_dictionary::read_binary(file.path());
    EXPECT_EQ(restored, dictionary);
}

TEST(DictionaryBinary, EmptyHealthySignatureSurvives) {
    temp_file file("bistna_dict_nohealthy.bin");
    auto dictionary = finite_dictionary();
    dictionary.healthy.clear();
    dictionary.write_binary(file.path());
    const auto restored = diag::fault_dictionary::read_binary(file.path());
    EXPECT_EQ(restored, dictionary);

    store::mapped_dictionary mapped(file.path());
    EXPECT_TRUE(mapped.healthy().empty());
}

TEST(DictionaryBinary, NanPayloadsSurviveBitExactly) {
    temp_file file("bistna_dict_nan.bin");
    auto dictionary = finite_dictionary();
    const double awkward = std::bit_cast<double>(std::uint64_t{0x7FF8C0FFEE000001ull});
    dictionary.trajectories[0].points[1].signature[2] = awkward;
    dictionary.trajectories[1].points[0].severity =
        -std::numeric_limits<double>::infinity();
    dictionary.write_binary(file.path());

    const auto restored = diag::fault_dictionary::read_binary(file.path());
    EXPECT_EQ(std::bit_cast<std::uint64_t>(
                  restored.trajectories[0].points[1].signature[2]),
              0x7FF8C0FFEE000001ull);
    EXPECT_TRUE(std::isinf(restored.trajectories[1].points[0].severity));

    store::mapped_dictionary mapped(file.path());
    EXPECT_EQ(std::bit_cast<std::uint64_t>(mapped.row(0, 1)[3]),
              0x7FF8C0FFEE000001ull);
}

TEST(DictionaryBinary, MappedViewMatchesTheStruct) {
    temp_file file("bistna_dict_mapped.bin");
    const auto dictionary = finite_dictionary();
    dictionary.write_binary(file.path());

    store::mapped_dictionary mapped(file.path());
    EXPECT_EQ(mapped.space(), dictionary.space);
    EXPECT_EQ(mapped.dimensions(), dictionary.space.dimensions());
    ASSERT_EQ(mapped.healthy().size(), dictionary.healthy.size());
    EXPECT_EQ(mapped.healthy()[0], 0.25);
    ASSERT_EQ(mapped.trajectory_count(), dictionary.trajectories.size());

    std::size_t total_rows = 0;
    for (std::size_t t = 0; t < mapped.trajectory_count(); ++t) {
        const auto& trajectory = dictionary.trajectories[t];
        EXPECT_EQ(mapped.kind(t), trajectory.kind);
        ASSERT_EQ(mapped.points(t), trajectory.points.size());
        for (std::size_t p = 0; p < trajectory.points.size(); ++p) {
            const auto row = mapped.row(t, p);
            ASSERT_EQ(row.size(), 1 + mapped.dimensions());
            EXPECT_EQ(row[0], trajectory.points[p].severity);
            for (std::size_t d = 0; d < mapped.dimensions(); ++d) {
                EXPECT_EQ(row[1 + d], trajectory.points[p].signature[d]);
            }
            ++total_rows;
        }
    }
    EXPECT_EQ(mapped.rows(), total_rows);
    EXPECT_EQ(mapped.matrix().size(), total_rows * (1 + mapped.dimensions()));
    // The matrix really is served straight from the mapping, 8-aligned.
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(mapped.matrix().data()) % alignof(double),
              0u);

    EXPECT_EQ(mapped.materialize(), dictionary);
}

TEST(DictionaryBinary, MappedViewIsMovable) {
    temp_file file("bistna_dict_move.bin");
    const auto dictionary = finite_dictionary();
    dictionary.write_binary(file.path());

    store::mapped_dictionary first(file.path());
    store::mapped_dictionary second(std::move(first));
    EXPECT_EQ(second.materialize(), dictionary);
    second = store::mapped_dictionary(file.path());
    EXPECT_EQ(second.materialize(), dictionary);
}

TEST(DictionaryBinary, BinaryAndCsvFormsAgree) {
    temp_file binary_file("bistna_dict_agree.bin");
    temp_file csv_file("bistna_dict_agree.csv");
    const auto dictionary = finite_dictionary();
    dictionary.write_binary(binary_file.path());
    dictionary.write_csv(csv_file.path());
    const auto from_binary = diag::fault_dictionary::read_binary(binary_file.path());
    const auto from_csv = diag::fault_dictionary::read_csv(csv_file.path());
    EXPECT_EQ(from_binary, from_csv);
    EXPECT_EQ(from_binary, dictionary);
}

TEST(DictionaryBinary, CorruptMatrixIsRejectedByBothLoaders) {
    temp_file file("bistna_dict_corrupt.bin");
    finite_dictionary().write_binary(file.path());

    // Flip one byte near the end of the file (inside the matrix frame).
    std::fstream io(file.path(), std::ios::binary | std::ios::in | std::ios::out);
    io.seekg(0, std::ios::end);
    const auto size = static_cast<std::int64_t>(io.tellg());
    io.seekp(size - 9);
    char byte = 0;
    io.seekg(size - 9);
    io.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    io.seekp(size - 9);
    io.write(&byte, 1);
    io.close();

    EXPECT_THROW((void)diag::fault_dictionary::read_binary(file.path()),
                 serialization_error);
    EXPECT_THROW((void)store::mapped_dictionary(file.path()), serialization_error);
}

TEST(DictionaryBinary, TrailingGarbageIsRejected) {
    temp_file file("bistna_dict_trailing.bin");
    finite_dictionary().write_binary(file.path());
    {
        std::ofstream out(file.path(), std::ios::binary | std::ios::app);
        out << "extra";
    }
    EXPECT_THROW((void)store::mapped_dictionary(file.path()), serialization_error);
}

} // namespace
