// Round trips through the framed binary record format: every converter
// must be bit-exact against the in-memory struct -- NaN payloads, signed
// zeros and infinities travel as bit patterns, limit names ship with the
// report (which the CSV seam cannot do), and a seeded fuzz loop hammers
// the encoders with randomized reports.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/screening.hpp"
#include "store/record_io.hpp"
#include "store/records.hpp"

namespace {

using namespace bistna;
using core::screening_report;

class temp_file {
public:
    explicit temp_file(const char* name) : path_(std::string("/tmp/") + name) {
        std::remove(path_.c_str());
    }
    ~temp_file() { std::remove(path_.c_str()); }
    const std::string& path() const { return path_; }

private:
    std::string path_;
};

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_bit_equal(double a, double b, const char* what) {
    EXPECT_EQ(bits(a), bits(b)) << what << ": " << a << " vs " << b;
}

void expect_interval_equal(const interval& a, const interval& b, const char* what) {
    expect_bit_equal(a.lo(), b.lo(), what);
    expect_bit_equal(a.hi(), b.hi(), what);
}

void expect_report_bit_equal(const screening_report& a, const screening_report& b) {
    EXPECT_EQ(a.passed, b.passed);
    EXPECT_EQ(a.self_test_passed, b.self_test_passed);
    EXPECT_EQ(a.distortion_measured, b.distortion_measured);
    expect_bit_equal(a.stimulus_volts, b.stimulus_volts, "stimulus_volts");
    expect_bit_equal(a.stimulus_phase_deg, b.stimulus_phase_deg, "stimulus_phase_deg");
    expect_bit_equal(a.offset_rate, b.offset_rate, "offset_rate");
    expect_bit_equal(a.thd_db, b.thd_db, "thd_db");
    expect_bit_equal(a.thd_f_hz, b.thd_f_hz, "thd_f_hz");
    ASSERT_EQ(a.limits.size(), b.limits.size());
    for (std::size_t j = 0; j < a.limits.size(); ++j) {
        const auto& x = a.limits[j];
        const auto& y = b.limits[j];
        EXPECT_EQ(x.limit.name, y.limit.name);
        EXPECT_EQ(x.limit_index, y.limit_index);
        EXPECT_EQ(x.passed, y.passed);
        expect_bit_equal(x.limit.f_hz, y.limit.f_hz, "f_hz");
        expect_bit_equal(x.limit.gain_db_min, y.limit.gain_db_min, "gain_db_min");
        expect_bit_equal(x.limit.gain_db_max, y.limit.gain_db_max, "gain_db_max");
        expect_bit_equal(x.measured_db, y.measured_db, "measured_db");
        expect_interval_equal(x.measured_bounds_db, y.measured_bounds_db, "bounds_db");
        expect_bit_equal(x.phase_deg, y.phase_deg, "phase_deg");
        expect_interval_equal(x.phase_deg_bounds, y.phase_deg_bounds, "phase_bounds");
        expect_bit_equal(x.margin_db, y.margin_db, "margin_db");
    }
}

/// A report exercising every serialization edge: unmeasured NaN THD,
/// infinities, signed zero, a NaN with a non-canonical payload, and
/// limit names that would need quoting in CSV.
screening_report awkward_report() {
    screening_report report;
    report.passed = false;
    report.self_test_passed = true;
    report.stimulus_volts = 0.15000000000000002;
    report.stimulus_phase_deg = -0.0;
    report.offset_rate = std::bit_cast<double>(std::uint64_t{0x7FF8DEADBEEF1234ull});
    report.distortion_measured = false; // thd_db stays the NaN sentinel
    report.thd_f_hz = std::numeric_limits<double>::infinity();
    core::limit_result result;
    result.limit.name = "pass band, \"edge\"";
    result.limit.f_hz = 1000.0;
    result.limit.gain_db_min = -std::numeric_limits<double>::infinity();
    result.limit.gain_db_max = 0.5;
    result.limit_index = 7;
    result.measured_db = -3.0103;
    result.measured_bounds_db = interval(-3.2, -2.9);
    result.phase_deg = -45.0;
    result.phase_deg_bounds = interval(-46.0, -44.0);
    result.margin_db = std::numeric_limits<double>::denorm_min();
    result.passed = true;
    report.limits.push_back(result);
    report.limits.push_back(core::limit_result{}); // all-default limit
    return report;
}

TEST(RecordStore, ScreeningReportRoundTripsBitExactly) {
    const auto report = awkward_report();
    const auto record = store::to_record(report, /*die=*/12345678901234ull);
    const auto restored = store::report_from_record(record);
    EXPECT_EQ(restored.die, 12345678901234ull);
    expect_report_bit_equal(restored.report, report);

    // The unmeasured THD really is the NaN sentinel, not a fake reading.
    EXPECT_TRUE(std::isnan(restored.report.thd_db));
    // And the awkward NaN payload survived exactly.
    EXPECT_EQ(bits(restored.report.offset_rate), 0x7FF8DEADBEEF1234ull);
}

TEST(RecordStore, BatchConvertersCarryDieIds) {
    std::vector<screening_report> reports(3, awkward_report());
    reports[1].passed = true;
    const auto records = store::reports_to_records(reports, /*first_die=*/41);
    ASSERT_EQ(records.size(), 3u);

    std::vector<std::uint64_t> die_ids;
    const auto restored = store::reports_from_records(records, &die_ids);
    ASSERT_EQ(restored.size(), 3u);
    EXPECT_EQ(die_ids, (std::vector<std::uint64_t>{41, 42, 43}));
    for (std::size_t i = 0; i < restored.size(); ++i) {
        expect_report_bit_equal(restored[i], reports[i]);
    }
}

TEST(RecordStore, AcquisitionResultRoundTripsBitExactly) {
    core::sweep_engine::acquisition_result result;
    result.calibration.amplitude.volts = 0.2999999999999997;
    result.calibration.amplitude.bounds_volts = interval(0.29, 0.31);
    result.calibration.amplitude.dbfs = -12.5;
    result.calibration.amplitude.bounds_dbfs = interval(-12.6, -12.4);
    result.calibration.amplitude.harmonic_k = 1;
    result.calibration.phase.radians = 1.5707963267948966;
    result.calibration.phase.bounds_radians = interval(1.5, 1.6);
    result.calibration.phase.harmonic_k = 1;
    result.offset_rate = -0.0;
    result.has_thd = false; // thd_db stays NaN
    core::frequency_point point;
    point.f_wave = hertz{997.0};
    point.gain_db = -0.1;
    point.gain_db_bounds = interval(-0.2, 0.0);
    point.phase_deg = -9.0;
    point.phase_deg_bounds = interval(-9.5, -8.5);
    point.ideal_gain_db = -0.09;
    point.ideal_phase_deg = -8.9;
    result.points.push_back(point);

    const auto record = store::to_record(result, /*item=*/6);
    const auto restored = store::acquisition_from_record(record);
    EXPECT_EQ(restored.item, 6u);
    EXPECT_EQ(restored.result.has_thd, false);
    EXPECT_TRUE(std::isnan(restored.result.thd_db));
    expect_bit_equal(restored.result.calibration.amplitude.volts,
                     result.calibration.amplitude.volts, "volts");
    expect_interval_equal(restored.result.calibration.amplitude.bounds_volts,
                          result.calibration.amplitude.bounds_volts, "bounds_volts");
    expect_bit_equal(restored.result.calibration.phase.radians,
                     result.calibration.phase.radians, "radians");
    expect_bit_equal(restored.result.offset_rate, result.offset_rate, "offset_rate");
    EXPECT_EQ(bits(restored.result.offset_rate), bits(-0.0)); // sign of zero kept
    ASSERT_EQ(restored.result.points.size(), 1u);
    expect_bit_equal(restored.result.points[0].f_wave.value, 997.0, "f_wave");
    expect_interval_equal(restored.result.points[0].gain_db_bounds,
                          point.gain_db_bounds, "gain bounds");
    expect_bit_equal(restored.result.points[0].ideal_phase_deg, point.ideal_phase_deg,
                     "ideal_phase_deg");
}

TEST(RecordStore, TrajectoryPointRoundTrips) {
    store::stored_trajectory_point stored;
    stored.kind = diag::fault_kind::integrator_leak;
    stored.trajectory = 9;
    stored.point.severity = 0.015625;
    stored.point.signature = {0.3, -0.0, std::numeric_limits<double>::quiet_NaN(), -70.0};

    const auto record = store::to_record(stored);
    const auto restored = store::trajectory_point_from_record(record);
    EXPECT_EQ(restored.kind, stored.kind);
    EXPECT_EQ(restored.trajectory, 9u);
    expect_bit_equal(restored.point.severity, stored.point.severity, "severity");
    ASSERT_EQ(restored.point.signature.size(), stored.point.signature.size());
    for (std::size_t i = 0; i < stored.point.signature.size(); ++i) {
        expect_bit_equal(restored.point.signature[i], stored.point.signature[i],
                         "signature");
    }
}

TEST(RecordStore, WrongRecordTypeIsRejected) {
    const auto record = store::to_record(awkward_report(), 1);
    EXPECT_THROW((void)store::acquisition_from_record(record), serialization_error);
    EXPECT_THROW((void)store::trajectory_point_from_record(record), serialization_error);
}

TEST(RecordStore, WriterReaderStreamRoundTrip) {
    temp_file file("bistna_store_stream.bin");
    std::vector<screening_report> reports;
    for (int i = 0; i < 5; ++i) {
        auto report = awkward_report();
        report.stimulus_volts = 0.1 * (i + 1);
        reports.push_back(report);
    }
    {
        store::record_writer writer(file.path());
        for (std::size_t i = 0; i < reports.size(); ++i) {
            writer.append(store::to_record(reports[i], 100 + i));
        }
        writer.flush();
        EXPECT_EQ(writer.records_written(), reports.size());
    }

    store::record_reader reader(file.path());
    std::size_t count = 0;
    while (auto record = reader.next()) {
        const auto restored = store::report_from_record(*record);
        EXPECT_EQ(restored.die, 100 + count);
        expect_report_bit_equal(restored.report, reports[count]);
        ++count;
    }
    EXPECT_EQ(count, reports.size());
    EXPECT_EQ(reader.records_read(), reports.size());
}

/// Randomized reports (seeded MC): any double field may be an ordinary
/// value, a denormal, an infinity or a payload-carrying NaN, and every
/// one must survive the byte round trip bit-exactly.
TEST(RecordStore, FuzzedReportsRoundTripBitExactly) {
    rng gen(20260807);
    const auto random_double = [&]() -> double {
        const double pick = gen.uniform();
        if (pick < 0.1) {
            // Arbitrary bit pattern: covers NaN payloads, denormals, infs.
            return std::bit_cast<double>(gen.next_u64());
        }
        if (pick < 0.15) {
            return std::numeric_limits<double>::quiet_NaN();
        }
        if (pick < 0.2) {
            return (pick < 0.175 ? 1.0 : -1.0) * std::numeric_limits<double>::infinity();
        }
        return gen.gaussian() * std::pow(10.0, gen.uniform(-12.0, 12.0));
    };

    for (int round = 0; round < 200; ++round) {
        screening_report report;
        report.passed = gen.uniform() < 0.5;
        report.self_test_passed = gen.uniform() < 0.5;
        report.distortion_measured = gen.uniform() < 0.5;
        report.stimulus_volts = random_double();
        report.stimulus_phase_deg = random_double();
        report.offset_rate = random_double();
        report.thd_db = random_double();
        report.thd_f_hz = random_double();
        const auto limit_count = static_cast<std::size_t>(gen.uniform_int(5));
        for (std::size_t j = 0; j < limit_count; ++j) {
            core::limit_result result;
            result.limit.name = "limit-" + std::to_string(gen.uniform_int(1000));
            result.limit.f_hz = random_double();
            result.limit.gain_db_min = random_double();
            result.limit.gain_db_max = random_double();
            result.limit_index = j;
            result.measured_db = random_double();
            result.measured_bounds_db = interval::from_unordered(gen.gaussian(), gen.gaussian());
            result.phase_deg = random_double();
            result.phase_deg_bounds = interval::from_unordered(gen.gaussian(), gen.gaussian());
            result.margin_db = random_double();
            result.passed = gen.uniform() < 0.5;
            report.limits.push_back(std::move(result));
        }

        const auto die = gen.uniform_int(std::uint64_t{1} << 30);
        const auto restored = store::report_from_record(store::to_record(report, die));
        EXPECT_EQ(restored.die, die);
        expect_report_bit_equal(restored.report, report);
    }
}

} // namespace
