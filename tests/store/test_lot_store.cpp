// Append-only lot store: create / append / reopen / scan, and the torn-
// write recovery contract -- a process killed mid-frame leaves a tail
// that open_append reports, truncates, and then appends over cleanly.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/screening.hpp"
#include "store/lot_store.hpp"
#include "store/records.hpp"

namespace {

using namespace bistna;

class temp_file {
public:
    explicit temp_file(const char* name) : path_(std::string("/tmp/") + name) {
        std::remove(path_.c_str());
    }
    ~temp_file() { std::remove(path_.c_str()); }
    const std::string& path() const { return path_; }

private:
    std::string path_;
};

core::screening_report report_for_die(std::uint64_t die) {
    core::screening_report report;
    report.passed = (die % 2) == 0;
    report.self_test_passed = true;
    report.stimulus_volts = 0.3 + 0.001 * static_cast<double>(die);
    core::limit_result result;
    result.limit.name = "lp";
    result.measured_db = -1.0 - static_cast<double>(die);
    report.limits.push_back(result);
    return report;
}

std::vector<store::stored_report> scan_reports(const std::string& path) {
    std::vector<store::stored_report> reports;
    for (const auto& record : store::lot_store::scan(path)) {
        reports.push_back(store::report_from_record(record));
    }
    return reports;
}

TEST(LotStore, CreateAppendScanRoundTrip) {
    temp_file file("bistna_lot_basic.bin");
    {
        auto lot = store::lot_store::create(file.path());
        EXPECT_FALSE(lot.recovery().existed);
        for (std::uint64_t die = 0; die < 4; ++die) {
            lot.append(store::to_record(report_for_die(die), die));
        }
        EXPECT_EQ(lot.records_appended(), 4u);
        EXPECT_EQ(lot.records(), 4u);
    }
    const auto reports = scan_reports(file.path());
    ASSERT_EQ(reports.size(), 4u);
    for (std::uint64_t die = 0; die < 4; ++die) {
        EXPECT_EQ(reports[die].die, die);
        EXPECT_EQ(reports[die].report.stimulus_volts,
                  report_for_die(die).stimulus_volts);
    }
}

TEST(LotStore, OpenAppendMissingFileStartsFresh) {
    temp_file file("bistna_lot_fresh.bin");
    auto lot = store::lot_store::open_append(file.path());
    EXPECT_FALSE(lot.recovery().existed);
    EXPECT_FALSE(lot.recovery().tail_truncated);
    lot.append(store::to_record(report_for_die(0), 0));
    EXPECT_EQ(scan_reports(file.path()).size(), 1u);
}

TEST(LotStore, OpenAppendExtendsACleanStore) {
    temp_file file("bistna_lot_extend.bin");
    {
        auto lot = store::lot_store::create(file.path());
        lot.append(store::to_record(report_for_die(0), 0));
        lot.append(store::to_record(report_for_die(1), 1));
    }
    {
        auto lot = store::lot_store::open_append(file.path());
        EXPECT_TRUE(lot.recovery().existed);
        EXPECT_EQ(lot.recovery().valid_records, 2u);
        EXPECT_FALSE(lot.recovery().tail_truncated);
        lot.append(store::to_record(report_for_die(2), 2));
        EXPECT_EQ(lot.records(), 3u);
        EXPECT_EQ(lot.records_appended(), 1u);
    }
    const auto reports = scan_reports(file.path());
    ASSERT_EQ(reports.size(), 3u);
    EXPECT_EQ(reports[2].die, 2u);
}

TEST(LotStore, TornTailIsReportedTruncatedAndAppendable) {
    temp_file file("bistna_lot_torn.bin");
    std::uint64_t intact_bytes = 0;
    {
        auto lot = store::lot_store::create(file.path());
        lot.append(store::to_record(report_for_die(0), 0));
        lot.append(store::to_record(report_for_die(1), 1));
        intact_bytes = lot.bytes();
        lot.append(store::to_record(report_for_die(2), 2));
    }
    // Simulate a crash mid-frame: the third record loses its trailing CRC
    // and half its payload.
    std::filesystem::resize_file(file.path(), intact_bytes + 11);

    // A strict scan refuses the torn file outright...
    EXPECT_THROW((void)store::lot_store::scan(file.path()), serialization_error);

    {
        // ...while open_append keeps the valid prefix, reports the tear,
        // and truncates it.
        auto lot = store::lot_store::open_append(file.path());
        EXPECT_TRUE(lot.recovery().existed);
        EXPECT_EQ(lot.recovery().valid_records, 2u);
        EXPECT_EQ(lot.recovery().valid_bytes, intact_bytes);
        EXPECT_TRUE(lot.recovery().tail_truncated);
        EXPECT_GE(lot.recovery().tail_offset, intact_bytes);
        EXPECT_FALSE(lot.recovery().tail_error.empty());
        lot.append(store::to_record(report_for_die(3), 3));
    }

    // The healed store scans cleanly: dice 0, 1, then the re-appended 3.
    const auto reports = scan_reports(file.path());
    ASSERT_EQ(reports.size(), 3u);
    EXPECT_EQ(reports[0].die, 0u);
    EXPECT_EQ(reports[1].die, 1u);
    EXPECT_EQ(reports[2].die, 3u);
}

TEST(LotStore, DefaultFlushIntervalIsPerRecordDurable) {
    temp_file file("bistna_lot_durable.bin");
    auto lot = store::lot_store::create(file.path());
    for (std::uint64_t die = 0; die < 3; ++die) {
        lot.append(store::to_record(report_for_die(die), die));
        // Every append hits the disk before append() returns: the on-disk
        // size equals the logical size while the store is still open.
        EXPECT_EQ(std::filesystem::file_size(file.path()), lot.bytes());
    }
}

TEST(LotStore, BatchedFlushIntervalFlushesOnScheduleAndOnDemand) {
    temp_file file("bistna_lot_batched.bin");
    auto lot = store::lot_store::create(file.path(), {.flush_interval = 64});
    for (std::uint64_t die = 0; die < 10; ++die) {
        lot.append(store::to_record(report_for_die(die), die));
    }
    // 10 < 64: appends may ride in the stream buffer...
    EXPECT_LE(std::filesystem::file_size(file.path()), lot.bytes());
    // ...until an explicit flush forces them out.
    lot.flush();
    EXPECT_EQ(std::filesystem::file_size(file.path()), lot.bytes());

    // Crossing the interval flushes without being asked.
    for (std::uint64_t die = 10; die < 74; ++die) {
        lot.append(store::to_record(report_for_die(die), die));
    }
    EXPECT_EQ(std::filesystem::file_size(file.path()), lot.bytes());
}

TEST(LotStore, BatchedStoreFlushesOnDestruction) {
    temp_file file("bistna_lot_dtor_flush.bin");
    {
        auto lot = store::lot_store::create(file.path(), {.flush_interval = 1000});
        for (std::uint64_t die = 0; die < 5; ++die) {
            lot.append(store::to_record(report_for_die(die), die));
        }
    }
    EXPECT_EQ(scan_reports(file.path()).size(), 5u);
}

TEST(LotStore, TornTailRecoveryWorksAtAnyFlushInterval) {
    // The crash-recovery contract is independent of the flush cadence: a
    // store written with batched flushing that dies leaves a valid prefix
    // plus at most one torn tail, exactly like the per-record store.
    for (const std::size_t interval : {std::size_t{1}, std::size_t{3}, std::size_t{64}}) {
        temp_file file("bistna_lot_torn_interval.bin");
        std::uint64_t intact_bytes = 0;
        {
            auto lot = store::lot_store::create(file.path(),
                                                {.flush_interval = interval});
            for (std::uint64_t die = 0; die < 5; ++die) {
                lot.append(store::to_record(report_for_die(die), die));
            }
            lot.flush();
            intact_bytes = lot.bytes();
            lot.append(store::to_record(report_for_die(5), 5));
            lot.append(store::to_record(report_for_die(6), 6));
        }
        // Tear mid-way through the record after the flush point.
        std::filesystem::resize_file(file.path(), intact_bytes + 9);

        auto lot = store::lot_store::open_append(file.path(),
                                                 {.flush_interval = interval});
        EXPECT_EQ(lot.recovery().valid_records, 5u) << "interval " << interval;
        EXPECT_TRUE(lot.recovery().tail_truncated) << "interval " << interval;
        lot.append(store::to_record(report_for_die(7), 7));
        lot.flush();
        const auto reports = scan_reports(file.path());
        ASSERT_EQ(reports.size(), 6u) << "interval " << interval;
        EXPECT_EQ(reports.back().die, 7u);
    }
}

TEST(LotStore, RejectsZeroFlushInterval) {
    temp_file file("bistna_lot_zero_interval.bin");
    EXPECT_THROW((void)store::lot_store::create(file.path(), {.flush_interval = 0}),
                 precondition_error);
}

TEST(LotStore, OpenAppendRefusesToRecoverForeignFiles) {
    temp_file file("bistna_lot_foreign.bin");
    {
        std::ofstream out(file.path(), std::ios::binary);
        out << "die,passed\n0,1\n"; // a CSV, not a record store
    }
    // Bad magic means this was never a store: open_append must throw, not
    // quietly truncate someone's CSV to 16 bytes.
    EXPECT_THROW((void)store::lot_store::open_append(file.path()), serialization_error);
    EXPECT_GT(std::filesystem::file_size(file.path()), 0u);
}

TEST(LotStore, ZeroLengthFileBecomesAFreshStore) {
    temp_file file("bistna_lot_zero.bin");
    { std::ofstream out(file.path(), std::ios::binary); }
    ASSERT_EQ(std::filesystem::file_size(file.path()), 0u);
    auto lot = store::lot_store::open_append(file.path());
    EXPECT_TRUE(lot.recovery().existed);
    EXPECT_FALSE(lot.recovery().tail_truncated);
    lot.append(store::to_record(report_for_die(0), 0));
    EXPECT_EQ(scan_reports(file.path()).size(), 1u);
}

} // namespace
