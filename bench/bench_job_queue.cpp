// Concurrent-session throughput of the job queue: the gate behind the
// streaming redesign.
//
// Two identical screening lots run on one shared worker pool, first
// back-to-back (submit, wait, submit, wait) and then concurrently (submit
// both, wait for both).  A pool that serializes per job, oversubscribes,
// or contends on shared state would make the concurrent pair slower than
// the sequential pair; the queue's task claiming is one atomic-ish pop per
// group, so the two orders must cost the same wall clock.  Gates:
//
//   * concurrent pair <= 1.1x the back-to-back pair (best of 3);
//   * every report of every job bit-identical to the synchronous
//     screen_batch reference, regardless of submission order.
//
// Writes the measurement to BENCH_job_queue.json (or argv[1]) so the perf
// trajectory is recorded run over run.
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/job_queue.hpp"
#include "core/screening.hpp"
#include "core/sweep_engine.hpp"
#include "dut/filters.hpp"
#include "gen/generator.hpp"

namespace {

using namespace bistna;

constexpr std::size_t kThreads = 4;
constexpr std::size_t kLanes = 4;
constexpr std::size_t kDice = 48;

core::board_factory paper_factory() {
    return [](std::uint64_t seed) {
        core::demonstrator_board board(gen::generator_params::ideal(),
                                       dut::make_paper_dut(0.01, seed));
        board.set_amplitude(millivolt(150.0));
        return board;
    };
}

core::analyzer_settings bench_settings() {
    core::analyzer_settings settings;
    settings.periods = 50;
    settings.settle_periods = 16;
    return settings;
}

core::sweep_engine make_engine(const std::shared_ptr<core::job_queue>& queue) {
    core::sweep_engine_options options;
    options.batch_lanes = kLanes;
    options.queue = queue;
    return core::sweep_engine(paper_factory(), bench_settings(), options);
}

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

bool reports_identical(const std::vector<core::screening_report>& a,
                       const std::vector<core::screening_report>& b) {
    if (a.size() != b.size()) {
        return false;
    }
    for (std::size_t die = 0; die < a.size(); ++die) {
        if (a[die].passed != b[die].passed ||
            a[die].stimulus_volts != b[die].stimulus_volts ||
            a[die].limits.size() != b[die].limits.size()) {
            return false;
        }
        for (std::size_t i = 0; i < a[die].limits.size(); ++i) {
            if (a[die].limits[i].measured_db != b[die].limits[i].measured_db) {
                return false;
            }
        }
    }
    return true;
}

void write_json(const std::string& path, double sequential_seconds,
                double concurrent_seconds, double ratio, bool identical) {
    std::ofstream out(path);
    if (!out) {
        std::cerr << "WARNING: could not write " << path << "\n";
        return;
    }
    out << "{\n"
        << "  \"bench\": \"job_queue\",\n"
        << "  \"dice_per_job\": " << kDice << ",\n"
        << "  \"threads\": " << kThreads << ",\n"
        << "  \"batch_lanes\": " << kLanes << ",\n"
        << "  \"sequential_pair_seconds\": " << sequential_seconds << ",\n"
        << "  \"concurrent_pair_seconds\": " << concurrent_seconds << ",\n"
        << "  \"concurrent_over_sequential\": " << ratio << ",\n"
        << "  \"bit_identical\": " << (identical ? "true" : "false") << "\n"
        << "}\n";
    std::cout << "perf record written to " << path << "\n";
}

} // namespace

int main(int argc, char** argv) {
    bench::banner("job-queue concurrent sessions",
                  "two screening lots on one shared pool: back-to-back vs concurrent "
                  "submission (" + std::to_string(kThreads) + " threads x " +
                      std::to_string(kLanes) + " lanes, " + std::to_string(kDice) +
                      " dice per lot)");

    const auto mask = core::spec_mask::paper_lowpass();

    // The synchronous reference both jobs must reproduce bit for bit.
    core::sweep_engine_options reference_options;
    reference_options.threads = 1;
    core::sweep_engine reference_engine(paper_factory(), bench_settings(),
                                        reference_options);
    const auto reference_a = reference_engine.screen_batch(mask, kDice, /*first_seed=*/1);
    const auto reference_b = reference_engine.screen_batch(mask, kDice, /*first_seed=*/501);

    double best_sequential = 0.0;
    double best_concurrent = 0.0;
    bool identical = true;
    for (int repeat = 0; repeat < 3; ++repeat) {
        const auto queue = std::make_shared<core::job_queue>(kThreads);
        auto engine_a = make_engine(queue);
        auto engine_b = make_engine(queue);

        const auto sequential_start = std::chrono::steady_clock::now();
        const auto seq_a = engine_a.submit_screening(mask, kDice, /*first_seed=*/1).results();
        const auto seq_b =
            engine_b.submit_screening(mask, kDice, /*first_seed=*/501).results();
        const double sequential_seconds = seconds_since(sequential_start);

        const auto concurrent_start = std::chrono::steady_clock::now();
        auto job_a = engine_a.submit_screening(mask, kDice, /*first_seed=*/1);
        auto job_b = engine_b.submit_screening(mask, kDice, /*first_seed=*/501);
        const auto conc_a = job_a.results();
        const auto conc_b = job_b.results();
        const double concurrent_seconds = seconds_since(concurrent_start);

        identical = identical && reports_identical(seq_a, reference_a) &&
                    reports_identical(seq_b, reference_b) &&
                    reports_identical(conc_a, reference_a) &&
                    reports_identical(conc_b, reference_b);
        if (repeat == 0 || sequential_seconds < best_sequential) {
            best_sequential = sequential_seconds;
        }
        if (repeat == 0 || concurrent_seconds < best_concurrent) {
            best_concurrent = concurrent_seconds;
        }
    }

    const double ratio = best_sequential > 0.0 ? best_concurrent / best_sequential : 0.0;
    std::cout << "\ntwo " << kDice << "-die lots, best of 3:\n"
              << "  back-to-back: " << best_sequential << " s\n"
              << "  concurrent:   " << best_concurrent << " s\n"
              << "  concurrent / back-to-back: " << ratio << "x\n"
              << "  all reports bit-identical to synchronous reference: "
              << (identical ? "YES" : "NO") << "\n";

    write_json(argc > 1 ? argv[1] : "BENCH_job_queue.json", best_sequential,
               best_concurrent, ratio, identical);

    bench::footnote("Jobs drain in submission order off one pool; per-die seeds are "
                    "index-derived, so interleaving two lots changes scheduling and "
                    "nothing else.");

    bool failed = false;
    if (!identical) {
        std::cerr << "FAILURE: a streamed job diverged from the synchronous reference\n";
        failed = true;
    }
    if (ratio > 1.1) {
        std::cerr << "FAILURE: concurrent pair took " << ratio
                  << "x the back-to-back pair (gate: <= 1.1x)\n";
        failed = true;
    }
    return failed ? 1 : 0;
}
