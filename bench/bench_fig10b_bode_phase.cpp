// Fig. 10b reproduction: Bode phase of the demonstrator DUT measured by
// the network analyzer (M = 200), with the eq. (5) error band.  The phase
// runs from ~0 deg in the passband to -180 deg deep in the stopband.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/network_analyzer.hpp"
#include "core/sweep.hpp"
#include "dut/filters.hpp"

int main() {
    using namespace bistna;

    bench::banner("Fig. 10b -- Bode phase of the 1 kHz active-RC LPF",
                  "full board, M = 200 periods, error band from eq. (5)");

    core::demonstrator_board board(gen::generator_params::ideal(),
                                   dut::make_paper_dut(0.01, 7));
    board.set_amplitude(millivolt(150.0));

    core::analyzer_settings settings;
    settings.periods = 200;
    settings.evaluator.modulator = sd::modulator_params::cmos035();
    settings.evaluator.offset = eval::offset_mode::calibrated;
    core::network_analyzer analyzer(board, settings);

    const auto frequencies = core::log_spaced(hertz{100.0}, hertz{100000.0}, 21);
    const auto points = analyzer.bode_sweep(frequencies);

    ascii_table table(
        {"f (Hz)", "measured (deg)", "band lo", "band hi", "true (deg)", "error (deg)"});
    csv_writer csv("fig10b_bode_phase.csv");
    csv.header({"f_hz", "phase_deg", "band_lo_deg", "band_hi_deg", "ideal_phase_deg"});
    double worst_error = 0.0;
    double worst_error_below_10k = 0.0;
    for (const auto& p : points) {
        const double error = p.phase_deg - p.ideal_phase_deg;
        table.add_row({format_fixed(p.f_wave.value, 0), format_fixed(p.phase_deg, 1),
                       format_fixed(p.phase_deg_bounds.lo(), 1),
                       format_fixed(p.phase_deg_bounds.hi(), 1),
                       format_fixed(p.ideal_phase_deg, 1), format_fixed(error, 2)});
        csv.row({p.f_wave.value, p.phase_deg, p.phase_deg_bounds.lo(),
                 p.phase_deg_bounds.hi(), p.ideal_phase_deg});
        worst_error = std::max(worst_error, std::abs(error));
        if (p.f_wave.value <= 10000.0) {
            worst_error_below_10k = std::max(worst_error_below_10k, std::abs(error));
        }
    }
    table.print(std::cout);

    std::cout << "\n";
    bench::verdict("worst |phase error| below 10 kHz (deg)", 0.0, worst_error_below_10k,
                   3.0);
    std::cout << "  phase descends 0 -> -180 deg across the sweep; the error band\n"
                 "  (eq. (5)) widens in the deep stopband exactly as Fig. 10b shows.\n";
    bench::footnote("Sweep written to fig10b_bode_phase.csv.");
    return 0;
}
