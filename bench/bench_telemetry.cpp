// Telemetry overhead gate: instrumenting a full screening lot must be
// close to free, and must not perturb a single measured bit.
//
// The same lot (threads x lanes lockstep screening through the job queue,
// engine-stage spans, cache counters, queue histograms all live) runs in
// two modes: DETACHED (no registry attached -- every telemetry call is a
// load + branch) and ATTACHED (a metric_registry collecting counters,
// histograms and trace spans).  Modes alternate within each repeat so
// thermal/frequency drift hits both equally.  Gates:
//
//   * attached <= 1.03x detached wall clock (best of 3 each);
//   * every report of every run byte-identical (serialized record frames
//     compared) to a synchronous single-thread reference.
//
// Writes the measurement to BENCH_telemetry.json (or argv[1]).
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/job_queue.hpp"
#include "core/screening.hpp"
#include "core/sweep_engine.hpp"
#include "dut/filters.hpp"
#include "gen/generator.hpp"
#include "store/records.hpp"
#include "telemetry/metrics.hpp"

namespace {

using namespace bistna;

constexpr std::size_t kThreads = 4;
constexpr std::size_t kLanes = 4;
constexpr std::size_t kDice = 48;
constexpr double kGate = 1.03;

core::board_factory paper_factory() {
    return [](std::uint64_t seed) {
        core::demonstrator_board board(gen::generator_params::ideal(),
                                       dut::make_paper_dut(0.01, seed));
        board.set_amplitude(millivolt(150.0));
        return board;
    };
}

core::analyzer_settings bench_settings() {
    core::analyzer_settings settings;
    settings.periods = 50;
    settings.settle_periods = 16;
    return settings;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/// Serialize every report exactly as the lot store would; byte equality
/// here is the same contract the shard merger enforces across processes.
std::vector<std::vector<std::uint8_t>>
record_bytes(const std::vector<core::screening_report>& reports) {
    std::vector<std::vector<std::uint8_t>> frames;
    frames.reserve(reports.size());
    for (std::size_t die = 0; die < reports.size(); ++die) {
        frames.push_back(store::to_record(reports[die], 1 + die).payload);
    }
    return frames;
}

/// One full streamed lot on a fresh pool; returns wall seconds.
double run_lot(std::vector<core::screening_report>& reports) {
    const auto mask = core::spec_mask::paper_lowpass();
    const auto queue = std::make_shared<core::job_queue>(kThreads);
    core::sweep_engine_options options;
    options.batch_lanes = kLanes;
    options.queue = queue;
    core::sweep_engine engine(paper_factory(), bench_settings(), options);

    const auto start = std::chrono::steady_clock::now();
    reports = engine.submit_screening(mask, kDice, /*first_seed=*/1).results();
    return seconds_since(start);
}

void write_json(const std::string& path, double detached_seconds,
                double attached_seconds, double ratio, bool identical,
                std::uint64_t spans, std::uint64_t items) {
    std::ofstream out(path);
    if (!out) {
        std::cerr << "WARNING: could not write " << path << "\n";
        return;
    }
    out << "{\n"
        << "  \"bench\": \"telemetry\",\n"
        << "  \"dice\": " << kDice << ",\n"
        << "  \"threads\": " << kThreads << ",\n"
        << "  \"batch_lanes\": " << kLanes << ",\n"
        << "  \"detached_seconds\": " << detached_seconds << ",\n"
        << "  \"attached_seconds\": " << attached_seconds << ",\n"
        << "  \"attached_over_detached\": " << ratio << ",\n"
        << "  \"gate\": " << kGate << ",\n"
        << "  \"spans_recorded\": " << spans << ",\n"
        << "  \"items_counted\": " << items << ",\n"
        << "  \"bit_identical\": " << (identical ? "true" : "false") << "\n"
        << "}\n";
    std::cout << "perf record written to " << path << "\n";
}

} // namespace

int main(int argc, char** argv) {
    bench::banner(
        "telemetry overhead",
        "one screening lot, detached vs attached registry, alternating (" +
            std::to_string(kThreads) + " threads x " + std::to_string(kLanes) +
            " lanes, " + std::to_string(kDice) + " dice)");

    // The synchronous reference every mode must reproduce byte for byte.
    core::sweep_engine_options reference_options;
    reference_options.threads = 1;
    core::sweep_engine reference_engine(paper_factory(), bench_settings(),
                                        reference_options);
    const auto reference_bytes = record_bytes(reference_engine.screen_batch(
        core::spec_mask::paper_lowpass(), kDice, /*first_seed=*/1));

    // Warm-up lot: stimulus tables, allocator arenas, page faults -- paid
    // once, outside both timed modes.
    {
        std::vector<core::screening_report> warmup;
        run_lot(warmup);
    }

    double best_detached = 0.0;
    double best_attached = 0.0;
    bool identical = true;
    std::uint64_t spans_recorded = 0;
    std::uint64_t items_counted = 0;
    for (int repeat = 0; repeat < 3; ++repeat) {
        std::vector<core::screening_report> detached_reports;
        std::vector<core::screening_report> attached_reports;

        // Odd repeats run attached first so ordering bias cancels.
        double detached_seconds = 0.0;
        double attached_seconds = 0.0;
        const auto run_attached = [&] {
            telemetry::metric_registry registry;
            registry.set_process_name("bench_telemetry");
            registry.attach();
            telemetry::set_thread_name("bench-main");
            attached_seconds = run_lot(attached_reports);
            registry.detach();
            const auto snapshot = registry.snapshot();
            spans_recorded = snapshot.spans.size();
            items_counted = snapshot.counter("job_queue.items_computed");
        };
        if (repeat % 2 == 0) {
            detached_seconds = run_lot(detached_reports);
            run_attached();
        } else {
            run_attached();
            detached_seconds = run_lot(detached_reports);
        }

        identical = identical &&
                    record_bytes(detached_reports) == reference_bytes &&
                    record_bytes(attached_reports) == reference_bytes;
        if (repeat == 0 || detached_seconds < best_detached) {
            best_detached = detached_seconds;
        }
        if (repeat == 0 || attached_seconds < best_attached) {
            best_attached = attached_seconds;
        }
    }

    const double ratio =
        best_detached > 0.0 ? best_attached / best_detached : 0.0;
    std::cout << "\n" << kDice << "-die lot, best of 3 per mode:\n"
              << "  detached: " << best_detached << " s\n"
              << "  attached: " << best_attached << " s\n"
              << "  attached / detached: " << ratio << "x (gate: <= " << kGate
              << "x)\n"
              << "  spans recorded: " << spans_recorded
              << ", items counted: " << items_counted << "\n"
              << "  all reports byte-identical to synchronous reference: "
              << (identical ? "YES" : "NO") << "\n";

    write_json(argc > 1 ? argv[1] : "BENCH_telemetry.json", best_detached,
               best_attached, ratio, identical, spans_recorded, items_counted);

    bench::footnote(
        "Detached, every instrumentation point is one relaxed atomic load "
        "and a predicted branch; attached, counters and histograms land in "
        "per-thread shards and spans in per-thread rings -- no shared-state "
        "contention either way, so the lot's measured bytes cannot move.");

    bool failed = false;
    if (!identical) {
        std::cerr << "FAILURE: an instrumented lot diverged from the "
                     "synchronous reference\n";
        failed = true;
    }
    if (ratio > kGate) {
        std::cerr << "FAILURE: attached lot took " << ratio
                  << "x the detached lot (gate: <= " << kGate << "x)\n";
        failed = true;
    }
    if (spans_recorded == 0 || items_counted == 0) {
        std::cerr << "FAILURE: attached run recorded no telemetry (spans="
                  << spans_recorded << ", items=" << items_counted
                  << ") -- instrumentation is dead\n";
        failed = true;
    }
    return failed ? 1 : 0;
}
