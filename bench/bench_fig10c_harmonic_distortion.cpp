// Fig. 10c reproduction: harmonic distortion of the DUT output for a
// 800 mVpp, 1.6 kHz stimulus, M = 400 periods.
//
// Paper: the proposed analyzer reads HD2 ~ -56 dB and HD3 ~ -62 dB and a
// LeCroy WaveSurfer 422 oscilloscope FFT agrees ("the agreement between
// the commercial system and the proposed network analyzer is excellent").
#include <iostream>

#include "baseline/oscilloscope.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/network_analyzer.hpp"
#include "dut/nonlinear.hpp"

int main() {
    using namespace bistna;

    bench::banner("Fig. 10c -- harmonic distortion measurement",
                  "800 mVpp @ 1.6 kHz into the 1 kHz LPF, M = 400; scope cross-check");

    core::demonstrator_board board(gen::generator_params::ideal(),
                                   dut::make_paper_dut_with_distortion(0.01, 7));
    board.set_amplitude(millivolt(200.0)); // 0.4 V amplitude = 800 mVpp

    core::analyzer_settings settings;
    settings.distortion_periods = 400;
    settings.evaluator.modulator = sd::modulator_params::cmos035();
    settings.evaluator.offset = eval::offset_mode::calibrated;
    core::network_analyzer analyzer(board, settings);

    const auto result = analyzer.measure_distortion(kilohertz(1.6), 3);

    // The "LeCroy" stand-in digitizes the same node and FFTs it.
    const auto tb = sim::timebase::for_wave_frequency(kilohertz(1.6));
    auto record = board.render(tb, 400, core::signal_path::through_dut);
    baseline::oscilloscope_params scope_params;
    scope_params.record_length = 1 << 15;
    // Autoranged vertical scale and the WaveSurfer's enhanced-resolution
    // (averaging) mode: ~11 effective bits, so quantizer spurs sit well
    // below the -62 dB harmonic being measured.
    scope_params.full_scale = 0.25;
    scope_params.adc_bits = 11;
    baseline::oscilloscope scope(scope_params);
    const auto digitized = scope.acquire(
        core::demonstrator_board::as_source(std::move(record)), tb.master().value);
    const auto scope_reading =
        scope.measure_harmonics(digitized, tb.master().value, 1600.0, 3);

    ascii_table table({"harmonic", "paper BIST (dB)", "ours BIST (dB)", "bounds",
                       "paper scope (dB)", "ours scope (dB)"});
    const double paper_bist[2] = {-56.0, -62.0};
    const double paper_scope[2] = {-56.0, -62.0}; // Fig. 10c annotations
    for (std::size_t i = 0; i < result.harmonic_dbc.size(); ++i) {
        table.add_row({"H" + std::to_string(i + 2), format_fixed(paper_bist[i], 0),
                       format_fixed(result.harmonic_dbc[i], 1),
                       format_fixed(result.harmonic_dbc_bounds[i].lo(), 1) + "/" +
                           format_fixed(result.harmonic_dbc_bounds[i].hi(), 1),
                       format_fixed(paper_scope[i], 0),
                       i < scope_reading.harmonic_dbc.size()
                           ? format_fixed(scope_reading.harmonic_dbc[i], 1)
                           : "-"});
    }
    table.print(std::cout);

    std::cout << "\n";
    bench::verdict("HD2 (dB)", -56.0, result.harmonic_dbc[0], 3.0);
    bench::verdict("HD3 (dB)", -62.0, result.harmonic_dbc[1], 4.0);
    if (scope_reading.harmonic_dbc.size() >= 2) {
        bench::verdict("BIST vs scope HD2 agreement (dB)", scope_reading.harmonic_dbc[0],
                       result.harmonic_dbc[0], 2.0);
        bench::verdict("BIST vs scope HD3 agreement (dB)", scope_reading.harmonic_dbc[1],
                       result.harmonic_dbc[1], 3.0);
    }

    csv_writer csv("fig10c_distortion.csv");
    csv.header({"harmonic", "bist_dbc", "bist_lo", "bist_hi", "scope_dbc"});
    for (std::size_t i = 0; i < result.harmonic_dbc.size(); ++i) {
        csv.row({static_cast<double>(i + 2), result.harmonic_dbc[i],
                 result.harmonic_dbc_bounds[i].lo(), result.harmonic_dbc_bounds[i].hi(),
                 i < scope_reading.harmonic_dbc.size() ? scope_reading.harmonic_dbc[i]
                                                       : 0.0});
    }
    bench::footnote("Both instruments read the same -56/-62 dB levels the paper\n"
                    "reports; increasing M sharpens the BIST bounds further\n"
                    "(\"if a better precision is needed, it can be achieved just by\n"
                    "increasing this number\").  CSV: fig10c_distortion.csv");
    return 0;
}
