// Fig. 10a reproduction: Bode magnitude of the demonstrator DUT
// (active-RC 2nd-order low-pass, fc = 1 kHz) measured by the full network
// analyzer with M = 200 periods, including the eq. (4) error band.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/network_analyzer.hpp"
#include "core/sweep.hpp"
#include "dut/filters.hpp"

int main() {
    using namespace bistna;

    bench::banner("Fig. 10a -- Bode magnitude of the 1 kHz active-RC LPF",
                  "full board, M = 200 periods, error band from eq. (4)");

    core::demonstrator_board board(gen::generator_params::ideal(),
                                   dut::make_paper_dut(0.01, 7));
    board.set_amplitude(millivolt(150.0));

    core::analyzer_settings settings;
    settings.periods = 200;
    settings.evaluator.modulator = sd::modulator_params::cmos035();
    settings.evaluator.offset = eval::offset_mode::calibrated;
    core::network_analyzer analyzer(board, settings);

    const auto frequencies = core::log_spaced(hertz{100.0}, hertz{100000.0}, 21);
    const auto points = analyzer.bode_sweep(frequencies);

    ascii_table table({"f (Hz)", "measured (dB)", "band lo", "band hi", "true (dB)",
                       "band width (dB)"});
    csv_writer csv("fig10a_bode_magnitude.csv");
    csv.header({"f_hz", "gain_db", "band_lo_db", "band_hi_db", "ideal_gain_db"});
    double worst_passband_error = 0.0;
    for (const auto& p : points) {
        table.add_row({format_fixed(p.f_wave.value, 0), format_fixed(p.gain_db, 2),
                       format_fixed(p.gain_db_bounds.lo(), 2),
                       format_fixed(p.gain_db_bounds.hi(), 2),
                       format_fixed(p.ideal_gain_db, 2),
                       format_fixed(p.gain_db_bounds.width(), 2)});
        csv.row({p.f_wave.value, p.gain_db, p.gain_db_bounds.lo(), p.gain_db_bounds.hi(),
                 p.ideal_gain_db});
        if (p.f_wave.value <= 1000.0) {
            worst_passband_error =
                std::max(worst_passband_error, std::abs(p.gain_db - p.ideal_gain_db));
        }
    }
    table.print(std::cout);

    std::cout << "\n";
    bench::verdict("worst passband |error| (dB, f <= fc)", 0.0, worst_passband_error, 0.3);
    const auto& deep = points.back();
    std::cout << "  deepest point: " << format_fixed(deep.gain_db, 1) << " dB at "
              << format_fixed(deep.f_wave.value, 0) << " Hz, band width "
              << format_fixed(deep.gain_db_bounds.width(), 1)
              << " dB -- \"the relative error increases as the response magnitude\n"
                 "  decreases\" (paper), recoverable by increasing M.\n";
    bench::footnote("Sweep written to fig10a_bode_magnitude.csv.");
    return 0;
}
