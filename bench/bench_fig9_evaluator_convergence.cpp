// Fig. 9 reproduction: harmonic-component measurements as a function of
// the number of samples MN.
//
// Paper setup: multitone A1 = 0.2 V, A2 = 0.02 V, A3 = 0.002 V fed
// directly to the evaluator from the ATE; N = 96; M swept 20..1000;
// twenty-five repeated runs show the spread collapsing as MN grows, with
// the three series converging to about -11 / -31 / -51 "dBm" (dB relative
// to the 0.7 V modulator full scale).
#include <iostream>
#include <vector>

#include "ate/multitone.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/statistics.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "eval/evaluator.hpp"

int main() {
    using namespace bistna;

    bench::banner("Fig. 9 -- evaluator convergence vs number of samples MN",
                  "multitone 0.2/0.02/0.002 V, N = 96, M = 20..1000, 25 runs");

    const std::vector<std::size_t> checkpoints = {20, 50, 100, 200, 300, 500, 700, 1000};
    const std::size_t runs = 25;
    const double truths[3] = {0.2, 0.02, 0.002};
    const double paper_dbfs[3] = {-11.0, -31.0, -51.0};

    const auto stimulus = ate::multitone_source::fig9_stimulus();

    csv_writer csv("fig9_convergence.csv");
    csv.header({"k", "run", "mn", "amplitude_dbfs", "bound_lo_dbfs", "bound_hi_dbfs"});

    ascii_table table({"k", "MN", "mean (dBFS)", "spread p05..p95 (dB)", "paper (dBm)"});
    for (std::size_t k = 1; k <= 3; ++k) {
        // Per-checkpoint statistics across the 25 runs.
        std::vector<std::vector<double>> readings(checkpoints.size());
        for (std::size_t run = 0; run < runs; ++run) {
            eval::evaluator_config config;
            config.modulator = sd::modulator_params::cmos035();
            config.offset = eval::offset_mode::calibrated;
            config.seed = 1000 + run; // fresh noise/initial state per run
            eval::sinewave_evaluator evaluator(config);
            const auto series =
                evaluator.amplitude_convergence(stimulus.as_source(), k, checkpoints);
            for (std::size_t c = 0; c < series.size(); ++c) {
                readings[c].push_back(series[c].dbfs);
                csv.row({static_cast<double>(k), static_cast<double>(run),
                         static_cast<double>(checkpoints[c] * 96), series[c].dbfs,
                         series[c].bounds_dbfs.lo(), series[c].bounds_dbfs.hi()});
            }
        }
        for (std::size_t c = 0; c < checkpoints.size(); ++c) {
            if (c != 0 && c != 3 && c + 1 != checkpoints.size()) {
                continue; // print M = 20, 200, 1000 rows
            }
            const auto stats = summarize(readings[c]);
            table.add_row({std::to_string(k), std::to_string(checkpoints[c] * 96),
                           format_fixed(stats.mean, 2),
                           format_fixed(stats.p95 - stats.p05, 3),
                           format_fixed(paper_dbfs[k - 1], 0)});
        }
        const auto final_stats = summarize(readings.back());
        bench::verdict("A" + std::to_string(k) + " at MN = 96000 (dBFS)",
                       amplitude_to_dbfs(truths[k - 1], eval::full_scale_reference),
                       final_stats.mean, 0.3);
    }
    std::cout << "\n";
    table.print(std::cout);

    bench::footnote(
        "All 25 x 8 x 3 points written to fig9_convergence.csv.  As in the\n"
        "paper: the spread shrinks like 1/MN (the eps/MN quantization floor),\n"
        "the second and third harmonics sit 20 and 40 dB below A1, and the\n"
        "evaluator itself never limits the analyzer's dynamic range --\n"
        "accuracy is bought with evaluation time (M).");
    return 0;
}
