// Stimulus-record cache: wall-clock gain and bit-identity gate.
//
// The system is clock-normalized, so the generator staircase a Bode sweep
// renders is identical at every frequency point -- the cache renders it
// once per batch instead of once per point.  This bench runs the same
// >= 16-point parallel Bode sweep with the cache enabled and disabled:
//
//   * with the realistic generator (0.35 um process draw + folded-cascode
//     op-amp noise, the paper's demonstrator) it gates a >= 1.5x wall-clock
//     speedup -- the switched-capacitor generator simulation dominated the
//     per-point render cost;
//   * with the ideal (noise-free) generator it asserts the cached and
//     uncached frequency_point results are bit-identical (they are under
//     the realistic generator too, because a fresh generator re-seeds its
//     noise streams deterministically per render -- both configs are
//     checked).
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/sweep.hpp"
#include "core/sweep_engine.hpp"
#include "dut/filters.hpp"
#include "gen/generator.hpp"

namespace {

using namespace bistna;

core::board_factory make_factory(bool ideal_generator) {
    return [ideal_generator](std::uint64_t seed) {
        auto params =
            ideal_generator ? gen::generator_params::ideal() : gen::generator_params{};
        core::demonstrator_board board(params, dut::make_paper_dut(0.01, seed));
        board.set_amplitude(millivolt(150.0));
        return board;
    };
}

bool points_identical(const std::vector<core::frequency_point>& a,
                      const std::vector<core::frequency_point>& b) {
    if (a.size() != b.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].f_wave.value != b[i].f_wave.value || a[i].gain_db != b[i].gain_db ||
            a[i].gain_db_bounds != b[i].gain_db_bounds || a[i].phase_deg != b[i].phase_deg ||
            a[i].phase_deg_bounds != b[i].phase_deg_bounds) {
            return false;
        }
    }
    return true;
}

struct sweep_timing {
    core::sweep_report report;
    core::stimulus_cache_stats cache;
};

/// Run the batch `repeats` times on a fresh engine each time and keep the
/// fastest run (wall-clock is noisy on loaded machines; min is the honest
/// estimate of the work).
sweep_timing best_of(const core::board_factory& factory,
                     const core::analyzer_settings& settings,
                     const std::vector<hertz>& frequencies, bool share_stimulus,
                     int repeats) {
    sweep_timing best;
    for (int i = 0; i < repeats; ++i) {
        core::sweep_engine_options options;
        options.threads = 4; // parallel, but deterministic w.r.t. the host
        options.share_stimulus = share_stimulus;
        core::sweep_engine engine(factory, settings, options);
        auto report = engine.run(frequencies);
        if (i == 0 || report.elapsed_seconds < best.report.elapsed_seconds) {
            best.cache = engine.stimulus_stats();
            best.report = std::move(report);
        }
    }
    return best;
}

} // namespace

int main() {
    using namespace bistna;

    bench::banner("stimulus-record cache",
                  "one clock-normalized staircase render shared across a parallel "
                  "Bode batch (cache on vs. off)");

    core::analyzer_settings settings;
    settings.periods = 200;
    settings.settle_periods = 32;
    // The default ideal modulator has exactly zero offset; running its
    // 4096-period offset calibration per point would only add a constant
    // unrelated to the render pipeline under test.
    settings.evaluator.offset = eval::offset_mode::none;
    const auto frequencies = core::log_spaced(hertz{100.0}, kilohertz(20.0), 24);

    // --- Speedup gate: the realistic generator (process draw + op-amp
    // noise) is where the render reuse pays.
    const auto realistic = make_factory(/*ideal_generator=*/false);
    const auto uncached = best_of(realistic, settings, frequencies, false, 3);
    const auto cached = best_of(realistic, settings, frequencies, true, 3);

    const bool realistic_identical = points_identical(uncached.report.points,
                                                      cached.report.points);
    const double speedup = cached.report.elapsed_seconds > 0.0
                               ? uncached.report.elapsed_seconds /
                                     cached.report.elapsed_seconds
                               : 0.0;
    std::cout << "\nRealistic generator, " << frequencies.size()
              << "-point Bode batch (M = " << settings.periods << ", settle "
              << settings.settle_periods << ", 4 threads, best of 3):\n"
              << "  cache off: " << uncached.report.elapsed_seconds << " s\n"
              << "  cache on:  " << cached.report.elapsed_seconds << " s ("
              << cached.cache.misses << " staircase render(s), " << cached.cache.hits
              << " reuses)\n"
              << "  speedup: " << speedup << "x\n"
              << "  outputs bit-identical: " << (realistic_identical ? "YES" : "NO") << "\n";

    // --- Bit-identity gate under the ideal (noise-free) generator.
    const auto ideal = make_factory(/*ideal_generator=*/true);
    const auto ideal_uncached = best_of(ideal, settings, frequencies, false, 1);
    const auto ideal_cached = best_of(ideal, settings, frequencies, true, 1);
    const bool ideal_identical =
        points_identical(ideal_uncached.report.points, ideal_cached.report.points);
    std::cout << "\nIdeal (noise-free) generator, same batch:\n"
              << "  outputs bit-identical: " << (ideal_identical ? "YES" : "NO") << "\n";

    bench::footnote("Clock normalization means the staircase is the same discrete "
                    "sequence at every master clock; caching it changes nothing but "
                    "the wall clock.");

    bool failed = false;
    if (!ideal_identical || !realistic_identical) {
        std::cerr << "FAILURE: cached sweep diverged from uncached reference\n";
        failed = true;
    }
    if (cached.cache.misses != 1) {
        std::cerr << "FAILURE: expected exactly one staircase render with the cache on, "
                  << "got " << cached.cache.misses << "\n";
        failed = true;
    }
    if (speedup < 1.5) {
        std::cerr << "FAILURE: expected >= 1.5x speedup from the stimulus cache, got "
                  << speedup << "x\n";
        failed = true;
    }
    return failed ? 1 : 0;
}
