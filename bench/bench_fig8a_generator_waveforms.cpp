// Fig. 8a reproduction: generator output waveforms at 62.5 kHz for the
// three programmed amplitudes.  Paper: reference voltages +/-75, +/-125,
// +/-150 mV produce amplitudes 300, 500, 600 mV.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "dsp/sine_fit.hpp"
#include "gen/generator.hpp"
#include "sim/timebase.hpp"

int main() {
    using namespace bistna;

    bench::banner("Fig. 8a -- generator output waveforms, f_wave = 62.5 kHz",
                  "amplitude programming via V_A+/V_A-; paper: 300/500/600 mV");

    // f_wave = 62.5 kHz -> f_gen = 1 MHz (Fig. 8 operating point).
    const auto tb = sim::timebase(megahertz(6.0));
    std::cout << "master clock " << tb.master().value / 1e6 << " MHz -> f_gen = "
              << tb.generator_clock().value / 1e6 << " MHz -> f_wave = "
              << tb.wave_frequency().value / 1e3 << " kHz\n\n";

    const double refs_mv[] = {75.0, 125.0, 150.0};
    const double paper_mv[] = {300.0, 500.0, 600.0};

    ascii_table table({"refs (mV)", "paper amplitude (mV)", "measured (mV)", "THD (dB)"});
    csv_writer csv("fig8a_waveforms.csv");
    csv.header({"time_us", "v75", "v125", "v150"});

    std::vector<std::vector<double>> waves;
    for (double ref : refs_mv) {
        gen::generator_params params; // 0.35 um non-ideal defaults
        params.seed = 3;
        gen::sinewave_generator generator(params);
        generator.set_amplitude(millivolt(2.0 * ref)); // differential V_A
        generator.settle(64);
        waves.push_back(generator.generate(16 * 64));
    }

    for (std::size_t i = 0; i < 3; ++i) {
        const auto fit = dsp::sine_fit_3param(waves[i], 1.0, 16.0);
        // Quick THD from the residual (distortion + noise floor).
        const double thd_db =
            20.0 * std::log10(fit.rms_residual / (fit.amplitude / std::sqrt(2.0)));
        table.add_row({"+/-" + format_fixed(refs_mv[i], 0), format_fixed(paper_mv[i], 0),
                       format_fixed(fit.amplitude * 1e3, 1), format_fixed(thd_db, 1)});
        bench::verdict("amplitude (mV), refs +/-" + format_fixed(refs_mv[i], 0),
                       paper_mv[i], fit.amplitude * 1e3, 0.03 * paper_mv[i]);
    }
    std::cout << "\n";
    table.print(std::cout);

    // Dump ~3 periods of each waveform (paper shows 0..200 us ~ 12 periods).
    const double ts_us = 1e6 / tb.generator_clock().value;
    for (std::size_t n = 0; n < 16 * 3; ++n) {
        csv.row({static_cast<double>(n) * ts_us, waves[0][n], waves[1][n], waves[2][n]});
    }
    bench::footnote("Waveforms written to fig8a_waveforms.csv.  The amplitude law\n"
                    "A = 4 x |V_A+/-| = 2 x (V_A+ - V_A-) holds across the range, as\n"
                    "measured in the paper.");
    return 0;
}
