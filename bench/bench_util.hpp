// Shared reporting helpers for the experiment-reproduction benches.
#pragma once

#include <iostream>
#include <string>

namespace bistna::bench {

inline void banner(const std::string& experiment, const std::string& description) {
    std::cout << "================================================================\n"
              << experiment << "\n"
              << description << "\n"
              << "================================================================\n";
}

inline void footnote(const std::string& text) { std::cout << "\n" << text << "\n\n"; }

/// "shape holds" verdict line: |measured - paper| within a stated window.
inline void verdict(const std::string& quantity, double paper, double measured,
                    double window) {
    const double delta = measured - paper;
    const bool ok = delta <= window && delta >= -window;
    std::cout << "  " << quantity << ": paper " << paper << ", measured " << measured
              << " (delta " << delta << ", window +/-" << window << ") -> "
              << (ok ? "SHAPE HOLDS" : "MISMATCH") << "\n";
}

} // namespace bistna::bench
