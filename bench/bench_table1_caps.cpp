// Table I reproduction: re-derive the generator biquad's normalized
// capacitor values from the design intent (resonance at f_gen/16, pole
// radius ~0.9625, passband gain 2) and compare against the paper's values.
#include <iostream>

#include "bench_util.hpp"
#include "common/math_util.hpp"
#include "common/table.hpp"
#include "sc/analysis.hpp"

int main() {
    using namespace bistna;

    bench::banner("Table I -- normalized capacitor values of the generator biquad",
                  "design_biquad() inverts the specs; paper values for comparison");

    // What the paper's values actually realize:
    const auto paper_caps = sc::biquad_caps::table1();
    const auto info = sc::analyze_biquad(paper_caps);
    std::cout << "Analysis of the paper's Table I values:\n"
              << "  pole angle   : fs / " << format_fixed(two_pi / info.pole_angle, 3)
              << "   (design target fs/16)\n"
              << "  pole radius  : " << format_fixed(info.pole_radius, 4) << "  (Q = "
              << format_fixed(info.q_factor, 2) << ")\n"
              << "  gain @ fs/16 : " << format_fixed(info.gain_at_16th, 3)
              << "  (Fig. 8a measures amplitude = 2 x (V_A+ - V_A-))\n\n";

    // Re-derive the capacitor set from those specs.
    sc::biquad_design_spec spec;
    spec.normalized_f0 = info.pole_angle / two_pi;
    spec.pole_radius = info.pole_radius;
    spec.passband_gain = info.gain_at_16th;
    spec.total_cap_scale = paper_caps.b + paper_caps.f;
    const auto designed = sc::design_biquad(spec);

    ascii_table table({"capacitor", "paper (Table I)", "re-derived", "error (%)"});
    auto row = [&](const char* name, double paper, double derived) {
        table.add_row({name, format_fixed(paper, 3), format_fixed(derived, 3),
                       format_fixed(100.0 * (derived - paper) / paper, 3)});
    };
    row("A", paper_caps.a, designed.a);
    row("B", paper_caps.b, designed.b);
    row("C", paper_caps.c, designed.c);
    row("D", paper_caps.d, designed.d);
    row("F", paper_caps.f, designed.f);
    table.print(std::cout);

    bench::footnote("Cin = CI(t): the time-variant array sin(k*pi/8), k = 0..4 (eq. (2)).\n"
                    "The re-derivation closes to <0.4 %: Table I is exactly the\n"
                    "two-integrator-loop realization of an fs/16 resonator with Q ~ 5\n"
                    "and passband gain 2.");
    return 0;
}
