// Headline-claim reproduction: "dynamic range greater than 70 dB up to
// 20 kHz", versus the ~40 dB of the ref-[8] band-pass + peak-detector
// analyzer the paper positions itself against.
//
// Protocol: a tone is swept from -10 to -80 dBFS (0.7 V full scale); each
// analyzer measures it and we record the level error.  An analyzer's
// usable dynamic range is the deepest level it still reads within 3 dB.
#include <cmath>
#include <iostream>

#include "ate/multitone.hpp"
#include "baseline/bandpass_analyzer.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "eval/evaluator.hpp"

namespace {

double measure_bist(double amplitude, std::size_t periods, std::uint64_t seed) {
    using namespace bistna;
    ate::multitone_source stimulus({ate::tone{1, amplitude, 0.4}}, 96);
    eval::evaluator_config config;
    config.modulator = sd::modulator_params::cmos035();
    config.offset = eval::offset_mode::calibrated;
    config.seed = seed;
    eval::sinewave_evaluator evaluator(config);
    return evaluator.measure_harmonic(stimulus.as_source(), 1, periods).amplitude.dbfs;
}

} // namespace

int main() {
    using namespace bistna;

    bench::banner("Headline -- dynamic range of the evaluator (paper: > 70 dB)",
                  "tone level sweep; BIST at M = 200 / 2000 / 20000 vs ref-[8] analyzer");

    baseline::bandpass_analyzer bandpass(baseline::bandpass_analyzer_params{});

    ascii_table table({"level (dBFS)", "BIST M=200", "BIST M=2000", "BIST M=20000",
                       "bandpass+detector [8]"});
    csv_writer csv("dynamic_range.csv");
    csv.header({"level_dbfs", "bist_m200_err_db", "bist_m2000_err_db",
                "bist_m20000_err_db", "bandpass_err_db"});

    double bist_range = 0.0;
    double bandpass_range = 0.0;
    for (double level = -10.0; level >= -80.0; level -= 10.0) {
        const double amplitude = eval::full_scale_reference * std::pow(10.0, level / 20.0);

        const double e200 = measure_bist(amplitude, 200, 42) - level;
        const double e2000 = measure_bist(amplitude, 2000, 43) - level;
        const double e20000 = measure_bist(amplitude, 20000, 44) - level;

        ate::multitone_source stimulus({ate::tone{1, amplitude, 0.4}}, 96);
        const auto bp = bandpass.measure(stimulus.as_source(), 1, 96);
        const double ebp =
            20.0 * std::log10(std::max(bp.amplitude, 1e-9) / amplitude);

        auto fmt = [](double e) { return bistna::format_fixed(e, 2) + " dB err"; };
        table.add_row({format_fixed(level, 0), fmt(e200), fmt(e2000), fmt(e20000),
                       fmt(ebp)});
        csv.row({level, e200, e2000, e20000, ebp});

        if (std::abs(e20000) < 3.0) {
            bist_range = -level;
        }
        if (std::abs(ebp) < 3.0) {
            bandpass_range = -level;
        }
    }
    table.print(std::cout);

    std::cout << "\n";
    bench::verdict("BIST dynamic range (dB), paper claims > 70", 70.0, bist_range, 10.0);
    bench::verdict("ref-[8] analyzer dynamic range (dB), paper cites ~40", 40.0,
                   bandpass_range, 10.0);
    bench::footnote(
        "The sigma-delta signature floor scales as eps/MN, so test time buys\n"
        "dynamic range: M = 200 resolves ~-55 dB, M = 20000 resolves below\n"
        "-80 dB.  The band-pass analyzer is stuck near -40 dB regardless --\n"
        "the comparison that motivates the paper.  CSV: dynamic_range.csv");
    return 0;
}
