// Fig. 8b reproduction: spectrum of a 1 Vpp, 62.5 kHz generator output.
// Paper: SFDR = 70 dB, THD = 67 dB, with the caveat that "these results
// correspond to the continuous-time analysis of a sampled signal.  A
// discrete-time application will improve these figures."
#include <iostream>

#include "bench_util.hpp"
#include <algorithm>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "dsp/resample.hpp"
#include "dsp/spectrum.hpp"
#include "gen/generator.hpp"

int main() {
    using namespace bistna;

    bench::banner("Fig. 8b -- generator output spectrum, 1 Vpp @ 62.5 kHz",
                  "paper: SFDR 70 dB, THD 67 dB (continuous-time view)");

    gen::generator_params params; // calibrated 0.35 um non-idealities
    params.seed = 21;
    gen::sinewave_generator generator(params);
    generator.set_amplitude(millivolt(250.0)); // -> 0.5 V amplitude = 1 Vpp
    generator.settle(64);
    const auto wave = generator.generate(16 * 4096);

    // Discrete-time view (what a sampled-data application sees).
    const auto dt = dsp::analyze_tone(wave, 16.0, 1.0, 9);

    // Continuous-time view: hold the staircase onto an 8x finer grid so the
    // scope-visible ZOH images enter the analysis.  The paper's Fig. 8b
    // span covers roughly the first nine harmonics, well below the hold
    // images at 15/17 f_wave, so report the CT SFDR both in-band (like the
    // plotted span) and full-band (images included).
    const auto held = dsp::zoh_upsample(wave, 8);
    const auto ct = dsp::analyze_tone(held, 16.0 * 8.0, 1.0, 9);
    const auto ct_spectrum =
        dsp::compute_spectrum(held, 16.0 * 8.0, dsp::window_kind::blackman_harris);
    double inband_spur = 0.0;
    const std::size_t fund_bin = ct_spectrum.bin_of_frequency(1.0);
    const std::size_t limit_bin = ct_spectrum.bin_of_frequency(10.0); // 10 f_wave
    for (std::size_t b = 8; b < limit_bin; ++b) {
        const std::size_t distance = b > fund_bin ? b - fund_bin : fund_bin - b;
        if (distance > 6) {
            inband_spur = std::max(inband_spur, ct_spectrum.amplitude[b]);
        }
    }
    const double ct_inband_sfdr =
        20.0 * std::log10(ct.fundamental_amplitude / inband_spur);

    ascii_table table({"view", "SFDR (dB)", "THD (dB)"});
    table.add_row({"paper (continuous-time measurement)", "70.0", "-67.0"});
    table.add_row({"ours, CT in-band (paper's plotted span)",
                   format_fixed(ct_inband_sfdr, 1), format_fixed(ct.thd_db, 1)});
    table.add_row({"ours, CT full-band (15/17 f_wave hold images)",
                   format_fixed(ct.sfdr_db, 1), format_fixed(ct.thd_db, 1)});
    table.add_row({"ours, discrete-time (paper: 'will improve')",
                   format_fixed(dt.sfdr_db, 1), format_fixed(dt.thd_db, 1)});
    table.print(std::cout);
    std::cout << "\n";
    bench::verdict("in-band SFDR (dB)", 70.0, ct_inband_sfdr, 10.0);
    bench::verdict("in-band THD (dB, negative)", -67.0, dt.thd_db, 10.0);

    // Spectrum CSV (dB relative to the fundamental), like the Fig. 8b plot.
    const auto spectrum = dsp::compute_spectrum(wave, 16.0 * 62.5e3 / 62.5e3, // normalized
                                                dsp::window_kind::blackman_harris);
    csv_writer csv("fig8b_spectrum.csv");
    csv.header({"f_over_fwave", "dbc"});
    const auto db = spectrum.in_db(dt.fundamental_amplitude);
    for (std::size_t b = 0; b < spectrum.bins(); ++b) {
        csv.row({spectrum.frequency_of_bin(b) * 16.0, db[b]});
    }
    bench::footnote(
        "Spectrum written to fig8b_spectrum.csv (x-axis in multiples of f_wave).\n"
        "The harmonic floor comes from the calibrated op-amp nonlinearity and\n"
        "capacitor mismatch; the discrete-time view beats the continuous-time\n"
        "one exactly as the paper's caveat predicts.");
    return 0;
}
