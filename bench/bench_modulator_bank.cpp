// Modulator-bank lockstep screening: wall-clock gain and bit-identity gate.
//
// Screens the same >= 64-die lot twice at the same thread count: once
// through the scalar per-die path (batch_lanes = 1) and once with dice
// grouped into SoA modulator-bank lanes (batch_lanes = 8).  The per-sample
// evaluator loop -- offset calibration plus one acquisition per mask limit,
// two modulators each -- dominates screening cost, and the bank turns N
// scalar recurrences into one vectorizable lockstep pass.  Gates:
//
//   * >= 2x wall-clock speedup (batched vs scalar, same thread count);
//   * bit-identical screening_report for every die.
//
// Writes the measurement to BENCH_modulator_bank.json (or argv[1]) so the
// perf trajectory is recorded run over run.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/screening.hpp"
#include "core/sweep_engine.hpp"
#include "dut/filters.hpp"
#include "gen/generator.hpp"

namespace {

using namespace bistna;

constexpr std::size_t kDice = 64;
constexpr std::size_t kThreads = 4;
constexpr std::size_t kLanes = 8;

struct lot_timing {
    std::vector<core::screening_report> reports;
    double seconds = 0.0;
};

core::board_factory make_factory() {
    return [](std::uint64_t seed) {
        core::demonstrator_board board(gen::generator_params::ideal(),
                                       dut::make_paper_dut(0.02, seed));
        board.set_amplitude(millivolt(150.0));
        return board;
    };
}

/// Screen the lot on a fresh engine, best of `repeats` (min wall-clock is
/// the honest estimate of the work on a loaded machine).
lot_timing best_of(const core::analyzer_settings& settings, std::size_t batch_lanes,
                   int repeats) {
    lot_timing best;
    for (int i = 0; i < repeats; ++i) {
        core::sweep_engine_options options;
        options.threads = kThreads;
        options.batch_lanes = batch_lanes;
        core::sweep_engine engine(make_factory(), settings, options);
        const auto start = std::chrono::steady_clock::now();
        auto reports = engine.screen_batch(core::spec_mask::paper_lowpass(), kDice, 1);
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
        if (i == 0 || seconds < best.seconds) {
            best.seconds = seconds;
            best.reports = std::move(reports);
        }
    }
    return best;
}

bool reports_identical(const std::vector<core::screening_report>& a,
                       const std::vector<core::screening_report>& b) {
    if (a.size() != b.size()) {
        return false;
    }
    for (std::size_t die = 0; die < a.size(); ++die) {
        if (a[die].self_test_passed != b[die].self_test_passed ||
            a[die].stimulus_volts != b[die].stimulus_volts ||
            a[die].passed != b[die].passed || a[die].limits.size() != b[die].limits.size()) {
            return false;
        }
        for (std::size_t i = 0; i < a[die].limits.size(); ++i) {
            if (a[die].limits[i].measured_db != b[die].limits[i].measured_db ||
                a[die].limits[i].measured_bounds_db != b[die].limits[i].measured_bounds_db ||
                a[die].limits[i].passed != b[die].limits[i].passed) {
                return false;
            }
        }
    }
    return true;
}

void write_json(const std::string& path, double scalar_seconds, double batched_seconds,
                double speedup, bool identical) {
    std::ofstream out(path);
    if (!out) {
        std::cerr << "WARNING: could not write " << path << "\n";
        return;
    }
    out << "{\n"
        << "  \"bench\": \"modulator_bank\",\n"
        << "  \"dice\": " << kDice << ",\n"
        << "  \"threads\": " << kThreads << ",\n"
        << "  \"batch_lanes\": " << kLanes << ",\n"
        << "  \"scalar_seconds\": " << scalar_seconds << ",\n"
        << "  \"batched_seconds\": " << batched_seconds << ",\n"
        << "  \"speedup\": " << speedup << ",\n"
        << "  \"dice_per_second_scalar\": " << static_cast<double>(kDice) / scalar_seconds
        << ",\n"
        << "  \"dice_per_second_batched\": " << static_cast<double>(kDice) / batched_seconds
        << ",\n"
        << "  \"bit_identical\": " << (identical ? "true" : "false") << "\n"
        << "}\n";
    std::cout << "perf record written to " << path << "\n";
}

} // namespace

int main(int argc, char** argv) {
    bench::banner("modulator-bank lockstep screening",
                  "one 64-die lot, scalar per-die evaluation vs. SoA bank lanes "
                  "(same thread count)");

    // Production-flow settings: calibrated offset handling (the grounded
    // 4096-period calibration run every real die pays) and the default
    // 200-period Bode acquisitions.
    core::analyzer_settings settings;

    // Best of 5: the gate compares two wall-clock minima on possibly noisy
    // shared runners, so give each side enough repeats to reach its floor.
    const auto scalar = best_of(settings, 1, 5);
    const auto batched = best_of(settings, kLanes, 5);

    const bool identical = reports_identical(scalar.reports, batched.reports);
    const double speedup = batched.seconds > 0.0 ? scalar.seconds / batched.seconds : 0.0;
    std::size_t passed = 0;
    for (const auto& report : batched.reports) {
        passed += report.passed ? 1 : 0;
    }

    std::cout << "\n" << kDice << "-die screening lot (" << kThreads << " threads, "
              << "best of 5):\n"
              << "  scalar path (batch_lanes = 1): " << scalar.seconds << " s\n"
              << "  bank path   (batch_lanes = " << kLanes << "): " << batched.seconds
              << " s\n"
              << "  speedup: " << speedup << "x\n"
              << "  lot yield: " << passed << "/" << kDice << "\n"
              << "  reports bit-identical: " << (identical ? "YES" : "NO") << "\n";

    write_json(argc > 1 ? argv[1] : "BENCH_modulator_bank.json", scalar.seconds,
               batched.seconds, speedup, identical);

    bench::footnote("Lanes never interact: each die keeps its own seeded RNG streams, "
                    "so grouping dice into bank lanes changes the wall clock and "
                    "nothing else.");

    bool failed = false;
    if (!identical) {
        std::cerr << "FAILURE: batched screening diverged from the scalar reference\n";
        failed = true;
    }
    if (speedup < 2.0) {
        std::cerr << "FAILURE: expected >= 2x speedup from bank lanes, got " << speedup
                  << "x\n";
        failed = true;
    }
    return failed ? 1 : 0;
}
