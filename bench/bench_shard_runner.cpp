// Multi-process shard runner: fan a multi-thousand-die screening lot
// across 4 worker processes and compare wall clock against 1 worker
// running the identical lot -- the process-level scaling story on top of
// the in-process roofline.  Gates:
//
//   * >= 1.7x full-lot wall clock at 4 workers vs 1 worker (each worker
//     single-threaded, so the ratio isolates process fan-out + merge
//     overhead, not thread-pool scaling);
//   * the 4-way merged store is BYTE-IDENTICAL to the 1-worker store.
//
// Writes the measurement to BENCH_shard_runner.json (or argv[1]) so the
// per-PR perf trajectory has a multi-process series.
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>

#include "bench_util.hpp"
#include "shard/coordinator.hpp"

namespace {

using namespace bistna;

constexpr std::uint64_t kDice = 4000;

/// Lot-scale settings (the roofline bench's regime): short acquisitions
/// with the grounded offset calibration still the dominant per-die term.
shard::lot_manifest lot_manifest_for_bench() {
    shard::lot_manifest manifest;
    manifest.sigma = 0.02;
    manifest.periods = 48;
    manifest.settle_periods = 8;
    manifest.calibration_periods = 1024;
    manifest.dice = kDice;
    manifest.first_seed = 1;
    // One thread per worker: the bench measures PROCESS fan-out, so the
    // single-worker side must not quietly use every core itself.
    manifest.threads = 1;
    manifest.batch_lanes = 8;
    return manifest;
}

struct fleet_timing {
    double seconds = 0.0;
    std::size_t retries = 0;
    std::uint64_t records = 0;
};

fleet_timing run_fleet(const shard::lot_manifest& manifest,
                       const std::string& worker, const std::string& dir,
                       const std::string& out, std::size_t workers) {
    shard::supervisor_options options;
    options.worker_command = {worker};
    options.shards = workers;
    options.max_processes = workers;
    options.shard_dir = dir;

    const auto start = std::chrono::steady_clock::now();
    const auto report = shard::run_lot(manifest, out, options);
    fleet_timing timing;
    timing.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    timing.retries = report.shards.retries;
    timing.records = report.merge.records_merged;
    return timing;
}

std::string read_bytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void write_json(const std::string& path, const fleet_timing& single,
                const fleet_timing& sharded, double speedup, bool identical) {
    std::ofstream out(path);
    if (!out) {
        std::cerr << "WARNING: could not write " << path << "\n";
        return;
    }
    out << "{\n"
        << "  \"bench\": \"shard_runner\",\n"
        << "  \"dice\": " << kDice << ",\n"
        << "  \"workers_single\": 1,\n"
        << "  \"workers_sharded\": 4,\n"
        << "  \"single_seconds\": " << single.seconds << ",\n"
        << "  \"single_dice_per_second\": "
        << static_cast<double>(kDice) / single.seconds << ",\n"
        << "  \"sharded_seconds\": " << sharded.seconds << ",\n"
        << "  \"sharded_dice_per_second\": "
        << static_cast<double>(kDice) / sharded.seconds << ",\n"
        << "  \"speedup\": " << speedup << ",\n"
        << "  \"retries\": " << sharded.retries << ",\n"
        << "  \"byte_identical\": " << (identical ? "true" : "false") << "\n"
        << "}\n";
    std::cout << "perf record written to " << path << "\n";
}

} // namespace

int main(int argc, char** argv) {
    bench::banner("multi-process shard runner",
                  "4000-die screening lot: 4 single-threaded worker processes "
                  "vs 1, merged store checked byte-identical");

    const auto self_dir = std::filesystem::path(argv[0]).parent_path();
    const std::string worker = (self_dir / "shard_worker").string();
    if (!std::filesystem::exists(worker)) {
        std::cerr << "FAILURE: shard_worker binary not found next to the bench ("
                  << worker << ")\n";
        return 1;
    }

    const std::string dir = "/tmp/bistna_bench_shard_runner";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const auto manifest = lot_manifest_for_bench();

    const auto single =
        run_fleet(manifest, worker, dir + "/single", dir + "/single.store", 1);
    const auto sharded =
        run_fleet(manifest, worker, dir + "/sharded", dir + "/sharded.store", 4);

    const bool identical =
        read_bytes(dir + "/single.store") == read_bytes(dir + "/sharded.store") &&
        single.records == kDice && sharded.records == kDice;
    const double speedup =
        sharded.seconds > 0.0 ? single.seconds / sharded.seconds : 0.0;

    std::cout << "\n" << kDice << "-die lot, 1 thread x 8 lanes per worker:\n"
              << "  1 worker process:  " << single.seconds << " s\n"
              << "  4 worker processes: " << sharded.seconds << " s ("
              << sharded.retries << " retries)\n"
              << "  speedup: " << speedup << "x\n"
              << "  merged store byte-identical: " << (identical ? "YES" : "NO")
              << "\n";

    write_json(argc > 1 ? argv[1] : "BENCH_shard_runner.json", single, sharded,
               speedup, identical);
    std::filesystem::remove_all(dir);

    bench::footnote("Workers are full OS processes sharing nothing but the "
                    "manifest file; the merged store's bytes equal the "
                    "single-worker store's because every worker emits its "
                    "range's frames in global die order.");

    bool failed = false;
    if (!identical) {
        std::cerr << "FAILURE: 4-way merged store diverged from the 1-worker store\n";
        failed = true;
    }
    if (speedup < 1.7) {
        std::cerr << "FAILURE: expected >= 1.7x at 4 workers, got " << speedup
                  << "x\n";
        failed = true;
    }
    return failed ? 1 : 0;
}
