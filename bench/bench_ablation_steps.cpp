// Ablation A4: why 16 steps per period?
//
// The generator quantizes the sine into P steps: P distinct capacitor
// magnitudes cost area (P/4 unit-ratioed caps for a quarter-wave-symmetric
// sine), while the zero-order-hold images sit at (P -/+ 1) f_wave with
// ~1/(P -/+ 1) amplitude.  Sweeping P with the programmable-generator
// extension shows the paper's P = 16 as the area/purity compromise.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/math_util.hpp"
#include "common/table.hpp"
#include "dsp/goertzel.hpp"
#include "dsp/resample.hpp"
#include "dsp/spectrum.hpp"
#include "gen/programmable.hpp"

int main() {
    using namespace bistna;

    bench::banner("Ablation A4 -- steps per period (the paper's P = 16)",
                  "capacitor count vs hold-image frequency/level vs in-band THD");

    ascii_table table({"P", "caps needed", "image at", "image level (dB)",
                       "in-band THD (dB)", "fundamental (V)"});
    csv_writer csv("ablation_steps.csv");
    csv.header({"steps", "caps", "image_multiple", "image_db", "thd_db"});

    for (std::size_t p : {8UL, 16UL, 32UL, 64UL}) {
        const auto pattern = gen::step_pattern::quantized_sine(p);
        gen::programmable_generator::params config; // non-ideal defaults
        config.seed = 11;
        gen::programmable_generator generator(pattern, config);
        generator.set_amplitude(0.25);
        generator.settle(64);
        const auto wave = generator.generate(p * 2048);

        // In-band quality (discrete-time, like a sampled-data application).
        // Cap the harmonic count below Nyquist/f_wave so folded harmonics
        // never land back on the fundamental (an issue only for small P).
        const std::size_t harmonics = std::min<std::size_t>(7, p / 2 - 1);
        const auto metrics =
            dsp::analyze_tone(wave, static_cast<double>(p), 1.0, harmonics);

        // Continuous-time hold image at (P-1) f_wave via ZOH upsampling.
        const auto held = dsp::zoh_upsample(wave, 4);
        const std::vector<double> tail(held.end() -
                                           static_cast<long>(std::min<std::size_t>(
                                               held.size(), 4 * p * 512)),
                                       held.end());
        const double fund = dsp::estimate_tone(tail, 1.0 / (4.0 * p), 1.0).amplitude;
        const double image =
            dsp::estimate_tone(tail, (static_cast<double>(p) - 1.0) / (4.0 * p), 1.0)
                .amplitude;
        const double image_db = 20.0 * std::log10(image / fund);

        table.add_row({std::to_string(p), std::to_string(pattern.level_count()),
                       std::to_string(p - 1) + " f_wave", format_fixed(image_db, 1),
                       format_fixed(metrics.thd_db, 1),
                       format_fixed(metrics.fundamental_amplitude, 3)});
        csv.row({static_cast<double>(p), static_cast<double>(pattern.level_count()),
                 static_cast<double>(p - 1), image_db, metrics.thd_db});
    }
    table.print(std::cout);

    std::cout << "\n";
    std::cout << "  image level follows ~ -20 log10(P - 1): each doubling of P buys\n"
                 "  ~6 dB of image suppression and one octave of separation, at the\n"
                 "  cost of doubling the capacitor array.\n";
    bench::footnote(
        "P = 16 gives images at 15 f_wave (-23.5 dB before any filtering,\n"
        "easily removed off-band) from only four capacitors -- the paper's\n"
        "sweet spot.  In-band THD even degrades slightly at larger P: with\n"
        "the Table-I pole radius fixed, a lower normalized f0 = 1/P means a\n"
        "lower-Q smoothing filter and less harmonic attenuation.  The step\n"
        "count buys image placement, not in-band purity.\n"
        "CSV: ablation_steps.csv");
    return 0;
}
