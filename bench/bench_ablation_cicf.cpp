// Ablation A2: the CI/CF = 0.4 choice (paper section III.B: "fixed to 0.4
// in order to avoid saturation effects in the amplifier while maintaining
// a moderate gain in the integrator").
//
// Sweep the ratio with a realistic integrator swing and comparator
// non-idealities: small ratios starve the integrator (comparator
// offset/hysteresis dominate), large ratios clip the op-amp and break the
// bounded-state property behind eps in [-4, 4].
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "eval/evaluator.hpp"
#include "sd/modulator.hpp"

namespace {

struct sweep_row {
    double ratio;
    double max_state_over_vref;
    std::size_t clip_events;
    double worst_eps;
    double amplitude_error_db;
};

sweep_row run_ratio(double ratio) {
    using namespace bistna;

    sd::modulator_params params = sd::modulator_params::cmos035();
    params.ci_over_cf = ratio;
    params.integrator_swing = 1.2; // realistic 3.3 V-supply swing

    // Direct state/eps observation on a bit-true modulator with only the
    // swing limit kept.  Offset and finite-gain leak are excluded here --
    // offset is cancelled by calibration (paper section II) and the leak
    // adds a slow eps drift at any ratio -- so the ablation isolates what
    // the ratio itself controls: integrator usage vs saturation.
    sd::modulator_params eps_params = sd::modulator_params::ideal();
    eps_params.ci_over_cf = ratio;
    eps_params.integrator_swing = params.integrator_swing;
    sd::sd_modulator mod(eps_params, bistna::rng(7));
    const double vref = params.vref;
    double max_state = 0.0;
    double sum_y = 0.0;
    long long sum_d = 0;
    double worst_eps = 0.0;
    const std::size_t total = 96 * 2000;
    for (std::size_t n = 0; n < total; ++n) {
        const double x = 0.6 * std::sin(two_pi * static_cast<double>(n) / 96.0);
        const bool q = (n % 96) < 48;
        sum_y += q ? x : -x;
        sum_d += mod.step(x, q);
        max_state = std::max(max_state, std::abs(mod.state()));
        worst_eps = std::max(worst_eps, std::abs(sum_y / vref - static_cast<double>(sum_d)));
    }

    // End-to-end accuracy through the evaluator.
    eval::evaluator_config config;
    config.modulator = params;
    config.offset = eval::offset_mode::calibrated;
    eval::sinewave_evaluator evaluator(config);
    const auto m = evaluator.measure_harmonic(
        [](std::size_t n) {
            return 0.6 * std::sin(two_pi * static_cast<double>(n) / 96.0);
        },
        1, 500);
    const double error_db =
        m.amplitude.dbfs - bistna::amplitude_to_dbfs(0.6, eval::full_scale_reference);

    return sweep_row{ratio, max_state / vref, mod.clip_events(), worst_eps, error_db};
}

} // namespace

int main() {
    using namespace bistna;

    bench::banner("Ablation A2 -- the CI/CF = 0.4 design choice",
                  "integrator usage vs saturation vs measurement accuracy");

    ascii_table table({"CI/CF", "max |state|/Vref", "clip events", "worst |eps|",
                       "amplitude error (dB)"});
    csv_writer csv("ablation_cicf.csv");
    csv.header({"ratio", "max_state_over_vref", "clip_events", "worst_eps", "error_db"});
    for (double ratio : {0.1, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2}) {
        const auto row = run_ratio(ratio);
        table.add_row({format_fixed(row.ratio, 1), format_fixed(row.max_state_over_vref, 2),
                       std::to_string(row.clip_events), format_fixed(row.worst_eps, 2),
                       format_fixed(row.amplitude_error_db, 3)});
        csv.row({row.ratio, row.max_state_over_vref, static_cast<double>(row.clip_events),
                 row.worst_eps, row.amplitude_error_db});
    }
    table.print(std::cout);

    const auto paper_choice = run_ratio(0.4);
    std::cout << "\n";
    bench::verdict("eps bound at CI/CF = 0.4 (theory: <= 4)", 4.0, paper_choice.worst_eps,
                   4.0);
    bench::footnote(
        "CI/CF = 0.4 keeps the integrator inside the op-amp swing with zero\n"
        "clip events while using enough of it that comparator offset and\n"
        "hysteresis stay negligible -- the paper's stated trade-off.  Ratios\n"
        ">= 1 start clipping (eps grows past the bound); very small ratios\n"
        "degrade accuracy without any bound benefit.  CSV: ablation_cicf.csv");
    return 0;
}
