// Full-lot roofline: render + screen + THD for a 20 000-die lot, PR 6
// defaults vs the lane-major pipeline at the autotuned configuration.
//
// Baseline is the engine exactly as PR 6 shipped it: reference pipeline,
// batch_lanes = 1, default thread count.  The roofline side turns on
// everything this PR built -- banked DUT state-space pass, lane-major
// evaluator kernels, arena-backed worker scratch, cached demodulation
// tables, calibration transplant, and autotuned {threads, batch_lanes}.
// Gates:
//
//   * >= 2x full-lot wall clock over the PR 6 default configuration;
//   * bit-identical screening_report (incl. THD) for every die.
//
// Writes the measurement to BENCH_lot_roofline.json (or argv[1]) so the
// per-PR perf trajectory has a lot-level series.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/screening.hpp"
#include "core/sweep_engine.hpp"
#include "dut/filters.hpp"
#include "gen/generator.hpp"

namespace {

using namespace bistna;

constexpr std::size_t kDice = 20000;

struct lot_timing {
    std::vector<core::screening_report> reports;
    double seconds = 0.0;
    std::size_t threads = 0;
    std::size_t batch_lanes = 0;
};

core::board_factory make_factory() {
    return [](std::uint64_t seed) {
        core::demonstrator_board board(gen::generator_params::ideal(),
                                       dut::make_paper_dut(0.02, seed));
        board.set_amplitude(millivolt(150.0));
        return board;
    };
}

/// Lot-scale settings: short acquisitions (the per-die cost a production
/// tester would pay), with the grounded offset calibration still the
/// dominant per-die term -- exactly the regime the calibration transplant
/// and the banked kernels were built for.
core::analyzer_settings lot_settings() {
    core::analyzer_settings settings;
    settings.evaluator.offset = eval::offset_mode::calibrated;
    settings.evaluator.calibration_periods = 1024;
    settings.periods = 48;
    settings.settle_periods = 8;
    settings.distortion_periods = 96;
    return settings;
}

/// Screen the lot, best of `repeats` passes on ONE engine (steady state:
/// stimulus cache, demod tables and calibration snapshots warm, exactly the
/// state a tester holds between lots).  Min wall-clock is the honest
/// estimate of the work on a loaded machine.
lot_timing best_of(const core::sweep_engine_options& options, int repeats) {
    core::sweep_engine engine(make_factory(), lot_settings(), options);
    core::screening_options screening;
    screening.measure_distortion = true;

    lot_timing best;
    const auto stats = engine.stats();
    best.threads = stats.threads;
    best.batch_lanes = stats.batch_lanes;
    for (int i = 0; i < repeats; ++i) {
        const auto start = std::chrono::steady_clock::now();
        auto reports =
            engine.screen_batch(core::spec_mask::paper_lowpass(), kDice, 1, screening);
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
        if (i == 0 || seconds < best.seconds) {
            best.seconds = seconds;
            best.reports = std::move(reports);
        }
    }
    return best;
}

bool same_double(double a, double b) {
    return (a != a && b != b) || a == b; // NaN-tolerant exact compare
}

bool reports_identical(const std::vector<core::screening_report>& a,
                       const std::vector<core::screening_report>& b) {
    if (a.size() != b.size()) {
        return false;
    }
    for (std::size_t die = 0; die < a.size(); ++die) {
        if (a[die].self_test_passed != b[die].self_test_passed ||
            a[die].stimulus_volts != b[die].stimulus_volts ||
            a[die].passed != b[die].passed ||
            a[die].distortion_measured != b[die].distortion_measured ||
            !same_double(a[die].thd_db, b[die].thd_db) ||
            a[die].limits.size() != b[die].limits.size()) {
            return false;
        }
        for (std::size_t i = 0; i < a[die].limits.size(); ++i) {
            if (a[die].limits[i].measured_db != b[die].limits[i].measured_db ||
                a[die].limits[i].measured_bounds_db != b[die].limits[i].measured_bounds_db ||
                a[die].limits[i].passed != b[die].limits[i].passed) {
                return false;
            }
        }
    }
    return true;
}

void write_json(const std::string& path, const lot_timing& baseline,
                const lot_timing& roofline, double speedup, bool identical) {
    std::ofstream out(path);
    if (!out) {
        std::cerr << "WARNING: could not write " << path << "\n";
        return;
    }
    out << "{\n"
        << "  \"bench\": \"lot_roofline\",\n"
        << "  \"dice\": " << kDice << ",\n"
        << "  \"baseline_threads\": " << baseline.threads << ",\n"
        << "  \"baseline_batch_lanes\": " << baseline.batch_lanes << ",\n"
        << "  \"baseline_seconds\": " << baseline.seconds << ",\n"
        << "  \"baseline_dice_per_second\": "
        << static_cast<double>(kDice) / baseline.seconds << ",\n"
        << "  \"autotuned_threads\": " << roofline.threads << ",\n"
        << "  \"autotuned_batch_lanes\": " << roofline.batch_lanes << ",\n"
        << "  \"roofline_seconds\": " << roofline.seconds << ",\n"
        << "  \"roofline_dice_per_second\": "
        << static_cast<double>(kDice) / roofline.seconds << ",\n"
        << "  \"speedup\": " << speedup << ",\n"
        << "  \"bit_identical\": " << (identical ? "true" : "false") << "\n"
        << "}\n";
    std::cout << "perf record written to " << path << "\n";
}

} // namespace

int main(int argc, char** argv) {
    bench::banner("full-lot roofline",
                  "20k-die render+screen+THD lot: PR 6 defaults vs lane-major "
                  "pipeline at the autotuned configuration");

    // PR 6 default configuration: reference pipeline, scalar lanes, default
    // thread count.  This is the bar the roofline must clear by 2x.
    core::sweep_engine_options baseline_options;
    baseline_options.pipeline = core::sweep_pipeline::reference;
    baseline_options.batch_lanes = 1;

    // The roofline side: everything on, configuration self-tuned.
    core::sweep_engine_options roofline_options;
    roofline_options.pipeline = core::sweep_pipeline::lane_major;
    roofline_options.autotune = true;

    const auto baseline = best_of(baseline_options, 2);
    const auto roofline = best_of(roofline_options, 2);

    const bool identical = reports_identical(baseline.reports, roofline.reports);
    const double speedup =
        roofline.seconds > 0.0 ? baseline.seconds / roofline.seconds : 0.0;
    std::size_t passed = 0;
    for (const auto& report : roofline.reports) {
        passed += report.passed ? 1 : 0;
    }

    std::cout << "\n" << kDice << "-die lot (best of 2, steady-state engine):\n"
              << "  PR 6 defaults (reference, " << baseline.threads << " threads, "
              << baseline.batch_lanes << " lane):  " << baseline.seconds << " s\n"
              << "  roofline (lane-major, autotuned " << roofline.threads
              << " threads x " << roofline.batch_lanes << " lanes): "
              << roofline.seconds << " s\n"
              << "  speedup: " << speedup << "x\n"
              << "  lot yield: " << passed << "/" << kDice << "\n"
              << "  reports bit-identical: " << (identical ? "YES" : "NO") << "\n";

    write_json(argc > 1 ? argv[1] : "BENCH_lot_roofline.json", baseline, roofline,
               speedup, identical);

    bench::footnote("Both sides compute the same IEEE-754 results die for die; the "
                    "roofline pipeline only reorganises the arithmetic (banked "
                    "lanes, reused buffers, transplanted calibration state).");

    bool failed = false;
    if (!identical) {
        std::cerr << "FAILURE: roofline pipeline diverged from the PR 6 reference\n";
        failed = true;
    }
    if (speedup < 2.0) {
        std::cerr << "FAILURE: expected >= 2x full-lot speedup, got " << speedup << "x\n";
        failed = true;
    }
    return failed ? 1 : 0;
}
