// Serial-vs-parallel throughput of the sweep engine.
//
// Runs the same Bode batch (paper DUT, Fig. 10a/b frequency grid) through
// the sweep engine's serial fallback and through its thread pool at the
// machine's hardware concurrency, checks the outputs are bit-identical, and
// reports the speedup.  Repeats the exercise for a Monte Carlo screening
// lot cross-checked against the sequential core::screen_lot.
#include <chrono>
#include <cstring>
#include <iostream>
#include <thread>

#include "bench_util.hpp"
#include "core/screening.hpp"
#include "core/sweep.hpp"
#include "core/sweep_engine.hpp"
#include "dut/filters.hpp"
#include "gen/generator.hpp"

namespace {

using namespace bistna;

core::board_factory paper_factory() {
    return [](std::uint64_t seed) {
        core::demonstrator_board board(gen::generator_params::ideal(),
                                       dut::make_paper_dut(0.01, seed));
        board.set_amplitude(millivolt(150.0));
        return board;
    };
}

bool points_identical(const std::vector<core::frequency_point>& a,
                      const std::vector<core::frequency_point>& b) {
    if (a.size() != b.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].f_wave.value != b[i].f_wave.value || a[i].gain_db != b[i].gain_db ||
            a[i].gain_db_bounds != b[i].gain_db_bounds || a[i].phase_deg != b[i].phase_deg ||
            a[i].phase_deg_bounds != b[i].phase_deg_bounds) {
            return false;
        }
    }
    return true;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

} // namespace

int main() {
    using namespace bistna;

    const unsigned hw = std::thread::hardware_concurrency();
    bench::banner("parallel sweep engine",
                  "serial-vs-parallel Bode batch + screening lot (hardware threads: " +
                      std::to_string(hw) + ")");

    core::analyzer_settings settings;
    settings.periods = 200;
    const auto frequencies = core::log_spaced(hertz{100.0}, kilohertz(20.0), 17);

    core::sweep_engine_options serial_options;
    serial_options.threads = 1;
    core::sweep_engine serial_engine(paper_factory(), settings, serial_options);
    const auto serial = serial_engine.run(frequencies);

    core::sweep_engine_options parallel_options; // threads = 0 -> hardware concurrency
    core::sweep_engine parallel_engine(paper_factory(), settings, parallel_options);
    const auto parallel = parallel_engine.run(frequencies);

    const bool identical = points_identical(serial.points, parallel.points);
    const double speedup = parallel.elapsed_seconds > 0.0
                               ? serial.elapsed_seconds / parallel.elapsed_seconds
                               : 0.0;
    std::cout << "\nBode batch (" << frequencies.size() << " points, M = " << settings.periods
              << "):\n"
              << "  serial   (1 thread):   " << serial.elapsed_seconds << " s\n"
              << "  parallel (" << parallel.threads_used << " threads):  "
              << parallel.elapsed_seconds << " s\n"
              << "  speedup: " << speedup << "x\n"
              << "  outputs bit-identical: " << (identical ? "YES" : "NO") << "\n"
              << "  worst |gain error|: " << serial.worst_gain_error_db << " dB, bound "
              << "violations: " << serial.gain_bound_violations << "\n";

    // Screening lot: engine vs the sequential reference implementation.
    const auto mask = core::spec_mask::paper_lowpass();
    const std::size_t dice = 8;

    const auto lot_start = std::chrono::steady_clock::now();
    const auto lot_serial =
        core::screen_lot(paper_factory(), settings, mask, dice, /*first_seed=*/1);
    const double lot_serial_s = seconds_since(lot_start);

    const auto lot_parallel_start = std::chrono::steady_clock::now();
    const auto lot_parallel =
        core::screen_lot_parallel(paper_factory(), settings, mask, dice, /*first_seed=*/1);
    const double lot_parallel_s = seconds_since(lot_parallel_start);

    const bool lot_match = lot_serial.dice == lot_parallel.dice &&
                           lot_serial.passed == lot_parallel.passed;
    std::cout << "\nScreening lot (" << dice << " dice, " << mask.limits.size()
              << " limits):\n"
              << "  sequential screen_lot: " << lot_serial_s << " s, yield "
              << lot_serial.yield() << "\n"
              << "  parallel engine:       " << lot_parallel_s << " s, yield "
              << lot_parallel.yield() << "\n"
              << "  speedup: " << (lot_parallel_s > 0.0 ? lot_serial_s / lot_parallel_s : 0.0)
              << "x, results match: " << (lot_match ? "YES" : "NO") << "\n";

    bench::footnote("A Bode sweep is embarrassingly parallel across frequency points; "
                    "per-point seeding keeps the batch bit-identical at any thread count.");

    if (!identical || !lot_match) {
        std::cerr << "FAILURE: parallel output diverged from serial reference\n";
        return 1;
    }
    if (hw >= 4 && speedup < 2.0) {
        std::cerr << "FAILURE: expected >= 2x speedup at " << hw << " hardware threads, got "
                  << speedup << "x\n";
        return 1;
    }
    return 0;
}
