// Ablation A3: how tight is eps in [-4, 4]?
//
// Eqs. (3)-(5) guarantee the signature error is bounded by 4 counts; the
// guarantee is what makes the intervals trustworthy.  This bench measures
// the *empirical* distribution of eps over many random stimuli and
// evaluation lengths, for the ideal and the non-ideal modulator.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "common/table.hpp"
#include "sd/modulator.hpp"

namespace {

bistna::summary eps_distribution(const bistna::sd::modulator_params& params,
                                 std::size_t periods, std::size_t trials,
                                 std::uint64_t seed) {
    using namespace bistna;
    rng generator(seed);
    std::vector<double> eps_values;
    eps_values.reserve(trials);
    for (std::size_t t = 0; t < trials; ++t) {
        sd::sd_modulator mod(params, generator.spawn());
        mod.reset(generator.uniform(-0.5, 0.5) * params.vref);
        const double amplitude = generator.uniform(0.01, 0.65);
        const double phase = generator.uniform(0.0, two_pi);
        const std::size_t k = 1 + generator.uniform_int(3);
        double sum_y = 0.0;
        long long sum_d = 0;
        const std::size_t total = periods * 96;
        for (std::size_t n = 0; n < total; ++n) {
            const double x = amplitude * std::sin(two_pi * static_cast<double>(k * n) /
                                                      96.0 +
                                                  phase);
            const bool q = (n % (96 / k)) < (48 / k);
            sum_y += q ? x : -x;
            sum_d += mod.step(x, q);
        }
        eps_values.push_back(sum_y / params.vref - static_cast<double>(sum_d));
    }
    return summarize(std::move(eps_values));
}

} // namespace

int main() {
    using namespace bistna;

    bench::banner("Ablation A3 -- empirical eps distribution vs the [-4, 4] bound",
                  "random amplitude/phase/harmonic stimuli, 400 trials per row");

    ascii_table table({"modulator", "M", "eps p05", "median", "p95", "min", "max",
                       "bound"});
    csv_writer csv("ablation_error_bounds.csv");
    csv.header({"ideal", "periods", "p05", "median", "p95", "min", "max"});

    double global_worst = 0.0;
    for (const bool ideal : {true, false}) {
        const auto params =
            ideal ? sd::modulator_params::ideal() : sd::modulator_params::cmos035();
        for (std::size_t periods : {20UL, 200UL, 1000UL}) {
            const auto stats =
                eps_distribution(params, periods, 400, ideal ? 100 + periods : 200 + periods);
            table.add_row({ideal ? "ideal" : "cmos035", std::to_string(periods),
                           format_fixed(stats.p05, 2), format_fixed(stats.median, 2),
                           format_fixed(stats.p95, 2), format_fixed(stats.min, 2),
                           format_fixed(stats.max, 2), "4.00"});
            csv.row({ideal ? 1.0 : 0.0, static_cast<double>(periods), stats.p05,
                     stats.median, stats.p95, stats.min, stats.max});
            if (ideal) {
                global_worst =
                    std::max({global_worst, std::abs(stats.min), std::abs(stats.max)});
            }
        }
    }
    table.print(std::cout);

    std::cout << "\n";
    bench::verdict("worst ideal-modulator |eps| (bound 4)", 4.0, global_worst, 4.0);
    bench::footnote(
        "The ideal modulator never exceeds the bound (the proof object of\n"
        "ref [13]); typical errors sit well inside it, so the intervals of\n"
        "eqs. (3)-(5) are conservative but honest.  The cmos035 rows show\n"
        "the raw (uncalibrated) signatures instead drifting as\n"
        "offset x MN / Vref (-3.3 counts per 20 periods here) -- a direct\n"
        "quantification of why the paper's offset-cancellation arithmetic is\n"
        "mandatory, after which only the bounded part remains.\n"
        "CSV: ablation_error_bounds.csv");
    return 0;
}
