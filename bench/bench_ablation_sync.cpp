// Ablation A1: the value of "inherent synchronization".
//
// In the paper's architecture the modulating square waves, the sigma-delta
// clock and the stimulus all derive from ONE master clock, so N = 96 and
// the evaluation windows hold an exact integer number of signal periods at
// every frequency.  This bench breaks that property on purpose: the
// stimulus frequency is detuned from the evaluation grid by delta_f/f (as
// would happen with an independent stimulus oscillator), and the
// measurement error is recorded.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/math_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "eval/evaluator.hpp"

namespace {

double measure_detuned(double relative_detune, std::size_t periods) {
    using namespace bistna;
    const double amplitude = 0.2;
    const double f_norm = (1.0 + relative_detune) / 96.0;
    eval::evaluator_config config;
    config.modulator = sd::modulator_params::ideal();
    config.offset = eval::offset_mode::none;
    eval::sinewave_evaluator evaluator(config);
    const auto m = evaluator.measure_harmonic(
        [=](std::size_t n) {
            return amplitude * std::sin(two_pi * f_norm * static_cast<double>(n) + 0.7);
        },
        1, periods);
    return m.amplitude.dbfs - amplitude_to_dbfs(amplitude, eval::full_scale_reference);
}

} // namespace

int main() {
    using namespace bistna;

    bench::banner("Ablation A1 -- inherent synchronization (N fixed by construction)",
                  "detune the stimulus from the master-clock grid and watch the error");

    ascii_table table({"stimulus detune (ppm of f_wave)", "error, M=50 (dB)",
                       "error, M=200 (dB)", "error, M=1000 (dB)"});
    csv_writer csv("ablation_sync.csv");
    csv.header({"detune_ppm", "err_m50_db", "err_m200_db", "err_m1000_db"});
    for (double ppm : {0.0, 10.0, 100.0, 1000.0, 10000.0}) {
        const double detune = ppm * 1e-6;
        const double e50 = measure_detuned(detune, 50);
        const double e200 = measure_detuned(detune, 200);
        const double e1000 = measure_detuned(detune, 1000);
        table.add_row({format_fixed(ppm, 0), format_fixed(e50, 3), format_fixed(e200, 3),
                       format_fixed(e1000, 3)});
        csv.row({ppm, e50, e200, e1000});
    }
    table.print(std::cout);

    std::cout << "\n";
    bench::verdict("synchronized (0 ppm) error at M = 1000 (dB)", 0.0,
                   std::abs(measure_detuned(0.0, 1000)), 0.02);
    bench::footnote(
        "With the shared master clock (0 ppm row) the error is just the\n"
        "eps/MN quantization floor at every M.  An unsynchronized stimulus\n"
        "leaks through the square-wave correlation: at 1 % detune the error\n"
        "grows with M instead of shrinking -- longer evaluation makes it\n"
        "WORSE.  This is exactly why the paper derives both f_wave and the\n"
        "modulator clock from one master clock (\"the oversampling ratio\n"
        "keeps constant when sweeping the master clock\").  CSV: ablation_sync.csv");
    return 0;
}
