// Binary record store vs CSV shard throughput: wall-clock gain and
// bit-exactness gate for the persistence seam.
//
// Synthesizes a seeded lot of diagnostic-shaped screening reports
// (including NaN-sentinel THD fields and payload-carrying NaNs, the
// values a text format mangles or loses) and pushes it through both
// persistence paths, write + read back:
//
//   * CSV:    screening_reports_to_csv -> csv_write, then
//             csv_read -> screening_reports_from_csv;
//   * binary: record_writer + to_record per report, then
//             record_reader + report_from_record (every frame CRC
//             verified on the way back in).
//
// Gates:
//
//   * >= 5x reports/sec for the binary store over the CSV path;
//   * the binary round trip is bit-exact on every double (NaN bit
//     patterns included) and loses no limit names.
//
// Writes the measurement to BENCH_record_store.json (or argv[1]) so the
// perf trajectory is recorded run over run.
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/screening.hpp"
#include "store/record_io.hpp"
#include "store/records.hpp"

namespace {

using namespace bistna;

constexpr std::size_t kReports = 20000;
constexpr std::size_t kLimits = 5;
constexpr int kRepeats = 3;

/// A lot of realistically shaped diagnostic reports: five limits each,
/// every third die unmeasured THD (the NaN sentinel), occasional
/// payload-carrying NaNs and infinities mixed into the measurements.
std::vector<core::screening_report> synthesize_lot(std::uint64_t seed) {
    rng gen(seed);
    std::vector<core::screening_report> reports;
    reports.reserve(kReports);
    for (std::size_t die = 0; die < kReports; ++die) {
        core::screening_report report;
        report.self_test_passed = gen.uniform() < 0.97;
        report.stimulus_volts = gen.gaussian(0.3, 0.005);
        report.stimulus_phase_deg = gen.gaussian(0.0, 0.2);
        report.offset_rate = gen.gaussian(0.0, 1e-4);
        report.distortion_measured = die % 3 != 0;
        report.thd_db = report.distortion_measured
                            ? gen.gaussian(-62.0, 2.0)
                            : std::numeric_limits<double>::quiet_NaN();
        report.thd_f_hz = 200.0;
        report.passed = report.self_test_passed;
        for (std::size_t i = 0; i < kLimits; ++i) {
            core::limit_result result;
            result.limit.f_hz = 100.0 * static_cast<double>(i + 1);
            result.limit.gain_db_min = -3.0;
            result.limit.gain_db_max = 0.5;
            result.limit.name = "limit_" + std::to_string(i);
            result.limit_index = i;
            result.measured_db = gen.gaussian(-1.0, 0.5);
            if (gen.uniform() < 0.01) {
                // A hard-faulted die: zero amplitude measures -inf dB.
                result.measured_db = -std::numeric_limits<double>::infinity();
            }
            result.measured_bounds_db = interval::centered(
                std::isfinite(result.measured_db) ? result.measured_db : 0.0, 0.05);
            result.phase_deg = gen.gaussian(-30.0, 10.0);
            result.phase_deg_bounds = interval::centered(result.phase_deg, 0.1);
            result.margin_db = gen.gaussian(0.5, 0.5);
            result.passed = result.margin_db > 0.0;
            report.passed = report.passed && result.passed;
            report.limits.push_back(std::move(result));
        }
        reports.push_back(std::move(report));
    }
    return reports;
}

struct timing {
    double write_seconds = 0.0;
    double read_seconds = 0.0;
    double total() const { return write_seconds + read_seconds; }
};

double elapsed_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
}

timing run_csv(const std::vector<core::screening_report>& reports,
               const core::spec_mask& mask, const std::string& path,
               std::vector<core::screening_report>& reloaded) {
    timing t;
    auto start = std::chrono::steady_clock::now();
    csv_write(core::screening_reports_to_csv(reports), path);
    t.write_seconds = elapsed_since(start);

    start = std::chrono::steady_clock::now();
    reloaded = core::screening_reports_from_csv(csv_read(path), &mask);
    t.read_seconds = elapsed_since(start);
    return t;
}

timing run_binary(const std::vector<core::screening_report>& reports,
                  const std::string& path,
                  std::vector<core::screening_report>& reloaded) {
    timing t;
    auto start = std::chrono::steady_clock::now();
    {
        store::record_writer writer(path);
        for (std::size_t die = 0; die < reports.size(); ++die) {
            writer.append(store::to_record(reports[die], die));
        }
        writer.flush();
    }
    t.write_seconds = elapsed_since(start);

    start = std::chrono::steady_clock::now();
    reloaded.clear();
    reloaded.reserve(reports.size());
    store::record_reader reader(path);
    while (auto record = reader.next()) {
        reloaded.push_back(store::report_from_record(*record).report);
    }
    t.read_seconds = elapsed_since(start);
    return t;
}

bool bits_equal(double a, double b) {
    return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Bit-exact comparison of the binary round trip against the source lot,
/// limit names included.
bool lots_bit_identical(const std::vector<core::screening_report>& a,
                        const std::vector<core::screening_report>& b) {
    if (a.size() != b.size()) {
        return false;
    }
    for (std::size_t die = 0; die < a.size(); ++die) {
        const auto& x = a[die];
        const auto& y = b[die];
        if (x.passed != y.passed || x.self_test_passed != y.self_test_passed ||
            x.distortion_measured != y.distortion_measured ||
            !bits_equal(x.stimulus_volts, y.stimulus_volts) ||
            !bits_equal(x.stimulus_phase_deg, y.stimulus_phase_deg) ||
            !bits_equal(x.offset_rate, y.offset_rate) ||
            !bits_equal(x.thd_db, y.thd_db) || !bits_equal(x.thd_f_hz, y.thd_f_hz) ||
            x.limits.size() != y.limits.size()) {
            return false;
        }
        for (std::size_t i = 0; i < x.limits.size(); ++i) {
            const auto& p = x.limits[i];
            const auto& q = y.limits[i];
            if (p.limit.name != q.limit.name || p.limit_index != q.limit_index ||
                p.passed != q.passed || !bits_equal(p.measured_db, q.measured_db) ||
                !bits_equal(p.measured_bounds_db.lo(), q.measured_bounds_db.lo()) ||
                !bits_equal(p.measured_bounds_db.hi(), q.measured_bounds_db.hi()) ||
                !bits_equal(p.phase_deg, q.phase_deg) ||
                !bits_equal(p.phase_deg_bounds.lo(), q.phase_deg_bounds.lo()) ||
                !bits_equal(p.phase_deg_bounds.hi(), q.phase_deg_bounds.hi()) ||
                !bits_equal(p.margin_db, q.margin_db)) {
                return false;
            }
        }
    }
    return true;
}

void write_json(const std::string& path, double csv_rate, double binary_rate,
                double speedup, bool bit_exact, std::uint64_t csv_bytes,
                std::uint64_t binary_bytes) {
    std::ofstream out(path);
    if (!out) {
        std::cerr << "WARNING: could not write " << path << "\n";
        return;
    }
    out << "{\n"
        << "  \"bench\": \"record_store\",\n"
        << "  \"reports\": " << kReports << ",\n"
        << "  \"limits_per_report\": " << kLimits << ",\n"
        << "  \"csv_reports_per_sec\": " << csv_rate << ",\n"
        << "  \"binary_reports_per_sec\": " << binary_rate << ",\n"
        << "  \"speedup\": " << speedup << ",\n"
        << "  \"bit_exact\": " << (bit_exact ? "true" : "false") << ",\n"
        << "  \"csv_bytes\": " << csv_bytes << ",\n"
        << "  \"binary_bytes\": " << binary_bytes << "\n"
        << "}\n";
    std::cout << "perf record written to " << path << "\n";
}

std::uint64_t file_bytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    return in ? static_cast<std::uint64_t>(in.tellg()) : 0;
}

} // namespace

int main(int argc, char** argv) {
    bench::banner("binary record store vs CSV shard throughput",
                  "20000-die diagnostic lot, write + read back: framed CRC32 "
                  "records against the text CSV seam");

    const auto mask = core::spec_mask::paper_lowpass();
    const auto reports = synthesize_lot(20260807);
    const std::string csv_path = "/tmp/bistna_bench_store.csv";
    const std::string binary_path = "/tmp/bistna_bench_store.bin";

    timing csv_best;
    timing binary_best;
    std::vector<core::screening_report> csv_reloaded;
    std::vector<core::screening_report> binary_reloaded;
    for (int i = 0; i < kRepeats; ++i) {
        const auto csv_t = run_csv(reports, mask, csv_path, csv_reloaded);
        if (i == 0 || csv_t.total() < csv_best.total()) {
            csv_best = csv_t;
        }
        const auto bin_t = run_binary(reports, binary_path, binary_reloaded);
        if (i == 0 || bin_t.total() < binary_best.total()) {
            binary_best = bin_t;
        }
    }

    const bool bit_exact = lots_bit_identical(reports, binary_reloaded);
    const double csv_rate = static_cast<double>(kReports) / csv_best.total();
    const double binary_rate = static_cast<double>(kReports) / binary_best.total();
    const double speedup = csv_best.total() / binary_best.total();
    const auto csv_bytes = file_bytes(csv_path);
    const auto binary_bytes = file_bytes(binary_path);

    std::cout << "\n" << kReports << " reports x " << kLimits
              << " limits, write + read back (best of " << kRepeats << "):\n"
              << "  CSV:    " << csv_best.write_seconds << " s write, "
              << csv_best.read_seconds << " s read -> " << csv_rate
              << " reports/s (" << csv_bytes << " bytes)\n"
              << "  binary: " << binary_best.write_seconds << " s write, "
              << binary_best.read_seconds << " s read -> " << binary_rate
              << " reports/s (" << binary_bytes << " bytes)\n"
              << "  speedup: " << speedup << "x\n"
              << "  binary round trip bit-exact: " << (bit_exact ? "YES" : "NO")
              << "\n";

    write_json(argc > 1 ? argv[1] : "BENCH_record_store.json", csv_rate, binary_rate,
               speedup, bit_exact, csv_bytes, binary_bytes);

    bench::footnote("The binary path is memcpy plus a sliced CRC32 per frame; the "
                    "CSV path pays shortest-round-trip double formatting and "
                    "parsing per cell plus string churn -- and still cannot carry "
                    "limit names or NaN payload bits.");

    std::remove(csv_path.c_str());
    std::remove(binary_path.c_str());

    bool failed = false;
    if (!bit_exact) {
        std::cerr << "FAILURE: binary round trip was not bit-exact\n";
        failed = true;
    }
    if (speedup < 5.0) {
        std::cerr << "FAILURE: expected >= 5x reports/sec over the CSV path, got "
                  << speedup << "x\n";
        failed = true;
    }
    return failed ? 1 : 0;
}
