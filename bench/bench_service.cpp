// Screening as a service: 4 concurrent client sessions multiplexed onto
// one bistna_serverd worker pool vs the same 4 lots run back-to-back
// through the offline unit_stream pipeline on an equally wide pool.
// Gates:
//
//   * concurrent service wall clock <= 1.15x the offline back-to-back
//     wall clock (the daemon multiplexes, it must not serialize or add
//     more than protocol overhead);
//   * every session's streamed records are BYTE-IDENTICAL to the offline
//     records for its lot.
//
// Writes the measurement to BENCH_service.json (or argv[1]) so the
// per-PR perf trajectory has a service-path series.
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_util.hpp"
#include "shard/manifest.hpp"
#include "shard/unit_stream.hpp"
#include "store/format.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"

namespace {

using namespace bistna;

constexpr std::size_t kSessions = 4;
constexpr std::uint64_t kDicePerLot = 700;
constexpr std::size_t kPoolThreads = 4;

/// Lot-scale settings (the roofline bench's regime), one lot per session
/// with its own seed series.
shard::lot_manifest lot_for_session(std::size_t session) {
    shard::lot_manifest manifest;
    manifest.sigma = 0.02;
    manifest.periods = 48;
    manifest.settle_periods = 8;
    manifest.calibration_periods = 1024;
    manifest.dice = kDicePerLot;
    manifest.first_seed = 1 + 100000 * static_cast<std::uint64_t>(session);
    manifest.threads = kPoolThreads;
    manifest.batch_lanes = 8;
    return manifest;
}

std::vector<store::record> offline_records(const shard::lot_manifest& manifest) {
    shard::unit_stream stream(manifest, 0, manifest.total_units());
    std::vector<store::record> records;
    while (auto item = stream.next()) {
        records.push_back(std::move(item->record));
    }
    return records;
}

void write_json(const std::string& path, double offline_seconds,
                double service_seconds, double ratio, bool identical) {
    std::ofstream out(path);
    if (!out) {
        std::cerr << "WARNING: could not write " << path << "\n";
        return;
    }
    const double total_dice = static_cast<double>(kSessions * kDicePerLot);
    out << "{\n"
        << "  \"bench\": \"service\",\n"
        << "  \"sessions\": " << kSessions << ",\n"
        << "  \"dice_per_lot\": " << kDicePerLot << ",\n"
        << "  \"pool_threads\": " << kPoolThreads << ",\n"
        << "  \"offline_seconds\": " << offline_seconds << ",\n"
        << "  \"offline_dice_per_second\": " << total_dice / offline_seconds << ",\n"
        << "  \"service_seconds\": " << service_seconds << ",\n"
        << "  \"service_dice_per_second\": " << total_dice / service_seconds << ",\n"
        << "  \"service_over_offline\": " << ratio << ",\n"
        << "  \"byte_identical\": " << (identical ? "true" : "false") << "\n"
        << "}\n";
    std::cout << "perf record written to " << path << "\n";
}

} // namespace

int main(int argc, char** argv) {
    bench::banner("screening service vs offline",
                  "4 concurrent sessions on one shared serverd pool vs the "
                  "same lots back-to-back offline, records checked "
                  "byte-identical");

    std::vector<shard::lot_manifest> lots;
    for (std::size_t i = 0; i < kSessions; ++i) {
        lots.push_back(lot_for_session(i));
    }

    // Offline reference: each lot on its own kPoolThreads-wide private
    // pool, strictly back-to-back.
    const auto offline_start = std::chrono::steady_clock::now();
    std::vector<std::vector<store::record>> offline;
    for (const auto& lot : lots) {
        offline.push_back(offline_records(lot));
    }
    const double offline_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      offline_start)
            .count();

    // Service: one daemon, one kPoolThreads-wide shared pool, all
    // sessions submitted concurrently.
    const std::string socket =
        "/tmp/bistna_bench_service_" + std::to_string(::getpid()) + ".sock";
    svc::server_options options;
    options.listen_path = socket;
    options.worker_threads = kPoolThreads;
    options.max_active_jobs = kSessions;
    options.admission_capacity = kSessions;
    options.session_quota = 1;
    svc::service_server server(std::move(options));
    server.start();

    const auto service_start = std::chrono::steady_clock::now();
    std::vector<std::future<std::vector<store::record>>> futures;
    for (const auto& lot : lots) {
        futures.push_back(std::async(std::launch::async, [&socket, lot] {
            svc::client c(socket);
            return c.run(lot);
        }));
    }
    std::vector<std::vector<store::record>> streamed;
    for (auto& f : futures) {
        streamed.push_back(f.get());
    }
    const double service_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      service_start)
            .count();
    server.stop();

    bool identical = true;
    for (std::size_t i = 0; i < kSessions; ++i) {
        if (streamed[i] != offline[i]) {
            identical = false;
            std::cerr << "FAILURE: session " << i
                      << " diverged from the offline records\n";
        }
    }
    const double ratio =
        offline_seconds > 0.0 ? service_seconds / offline_seconds : 0.0;

    std::cout << "\n" << kSessions << " sessions x " << kDicePerLot
              << " dice, " << kPoolThreads << " pool threads:\n"
              << "  offline back-to-back: " << offline_seconds << " s\n"
              << "  concurrent service:   " << service_seconds << " s\n"
              << "  service/offline: " << ratio << "x\n"
              << "  records byte-identical: " << (identical ? "YES" : "NO")
              << "\n";

    write_json(argc > 1 ? argv[1] : "BENCH_service.json", offline_seconds,
               service_seconds, ratio, identical);

    bench::footnote("Both sides run the identical shard::unit_stream "
                    "pipeline; the daemon adds only framing, CRCs and a "
                    "loopback socket hop, so concurrent multiplexing onto "
                    "one pool should cost at most protocol overhead.");

    bool failed = false;
    if (!identical) {
        failed = true;
    }
    if (ratio > 1.15) {
        std::cerr << "FAILURE: expected <= 1.15x offline wall clock, got "
                  << ratio << "x\n";
        failed = true;
    }
    return failed ? 1 : 0;
}
