// Fault-dictionary build throughput: wall-clock gain and bit-identity gate.
//
// Builds the same five-fault dictionary twice at the same thread count:
// once through the scalar per-item acquisition path (batch_lanes = 1) and
// once with severity grid points grouped into SoA modulator-bank lanes
// (batch_lanes = 8).  The per-sample evaluator loop dominates the build
// (offset calibration plus one acquisition per frequency and per
// distortion harmonic, two modulators each), so the lockstep bank should
// carry the same >= 2x it delivers for screening lots.  Gates:
//
//   * >= 2x wall-clock speedup (batched vs scalar, same thread count);
//   * bit-identical dictionaries (every trajectory point, every component).
//
// Writes the measurement to BENCH_fault_diagnosis.json (or argv[1]) so the
// perf trajectory is recorded run over run.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "core/screening.hpp"
#include "diag/fault_model.hpp"
#include "diag/trajectory_builder.hpp"

namespace {

using namespace bistna;

constexpr std::size_t kThreads = 4;
// Wide lanes amortize the bank's per-acquisition overhead (demod control
// vectors, record transposes) across more dice, and 1 + 5 faults x 12
// severities = 61 items make exactly one 16-lane group per worker -- an
// uneven group count would hide bank speedup behind load imbalance.
constexpr std::size_t kLanes = 16;
constexpr std::size_t kGridPoints = 12;

struct build_timing {
    diag::fault_dictionary dictionary;
    double seconds = 0.0;
};

/// Build the dictionary on a fresh engine, best of `repeats`.
build_timing best_of(std::size_t batch_lanes, int repeats) {
    const diag::die_design design;
    const core::analyzer_settings settings;
    const auto space =
        diag::signature_space::from_mask(core::spec_mask::paper_lowpass(), 3);
    diag::trajectory_build_options options;
    options.grid_points = kGridPoints;
    options.threads = kThreads;
    options.batch_lanes = batch_lanes;

    build_timing best;
    for (int i = 0; i < repeats; ++i) {
        const auto start = std::chrono::steady_clock::now();
        auto dictionary = diag::build_dictionary(design, settings, space,
                                                 diag::default_catalog(), options);
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
        if (i == 0 || seconds < best.seconds) {
            best.seconds = seconds;
            best.dictionary = std::move(dictionary);
        }
    }
    return best;
}

void write_json(const std::string& path, std::size_t items, double scalar_seconds,
                double batched_seconds, double speedup, bool identical) {
    std::ofstream out(path);
    if (!out) {
        std::cerr << "WARNING: could not write " << path << "\n";
        return;
    }
    out << "{\n"
        << "  \"bench\": \"fault_diagnosis\",\n"
        << "  \"grid_items\": " << items << ",\n"
        << "  \"threads\": " << kThreads << ",\n"
        << "  \"batch_lanes\": " << kLanes << ",\n"
        << "  \"scalar_seconds\": " << scalar_seconds << ",\n"
        << "  \"batched_seconds\": " << batched_seconds << ",\n"
        << "  \"speedup\": " << speedup << ",\n"
        << "  \"bit_identical\": " << (identical ? "true" : "false") << "\n"
        << "}\n";
    std::cout << "perf record written to " << path << "\n";
}

} // namespace

int main(int argc, char** argv) {
    bench::banner("fault-dictionary build throughput",
                  "five-fault severity sweep, scalar per-item acquisition vs. SoA "
                  "bank lanes (same thread count)");

    // Best of 3: each build is itself a sizeable batch (61 acquisition
    // items incl. offset calibrations), so per-run jitter is modest.
    const auto scalar = best_of(1, 3);
    const auto batched = best_of(kLanes, 3);

    const bool identical = scalar.dictionary == batched.dictionary;
    const double speedup = batched.seconds > 0.0 ? scalar.seconds / batched.seconds : 0.0;
    std::size_t items = 1;
    for (const auto& trajectory : batched.dictionary.trajectories) {
        items += trajectory.points.size();
    }

    std::cout << "\n" << items << "-item dictionary build (" << kThreads
              << " threads, best of 3):\n"
              << "  scalar path (batch_lanes = 1): " << scalar.seconds << " s\n"
              << "  bank path   (batch_lanes = " << kLanes << "): " << batched.seconds
              << " s\n"
              << "  speedup: " << speedup << "x\n"
              << "  dictionaries bit-identical: " << (identical ? "YES" : "NO") << "\n";

    write_json(argc > 1 ? argv[1] : "BENCH_fault_diagnosis.json", items, scalar.seconds,
               batched.seconds, speedup, identical);

    bench::footnote("Every grid point owns its derived evaluator seed, so grouping "
                    "severities into bank lanes changes the wall clock and nothing "
                    "else -- the shipped dictionary is the same file either way.");

    bool failed = false;
    if (!identical) {
        std::cerr << "FAILURE: batched dictionary build diverged from the scalar "
                     "reference\n";
        failed = true;
    }
    if (speedup < 2.0) {
        std::cerr << "FAILURE: expected >= 2x speedup from bank lanes, got " << speedup
                  << "x\n";
        failed = true;
    }
    return failed ? 1 : 0;
}
