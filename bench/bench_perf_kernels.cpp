// A5: throughput of the simulation kernels (google-benchmark).
//
// The simulator's cost model: one master-clock sample = 1 modulator step
// x2 (matched pair) + 1/6 generator step + 1 DUT state-space step.  These
// micro-benchmarks size experiment runtimes (e.g. Fig. 9's 25 x 96k-sample
// runs) and catch performance regressions.
#include <benchmark/benchmark.h>

#include <cmath>

#include "common/math_util.hpp"
#include "core/board.hpp"
#include "dsp/fft.hpp"
#include "dut/filters.hpp"
#include "eval/signature.hpp"
#include "gen/generator.hpp"
#include "linalg/expm.hpp"
#include "sd/modulator.hpp"

namespace {

using namespace bistna;

void bm_modulator_step(benchmark::State& state) {
    sd::sd_modulator mod(sd::modulator_params::cmos035(), rng(1));
    std::size_t n = 0;
    for (auto _ : state) {
        const double x = 0.3 * std::sin(two_pi * static_cast<double>(n++) / 96.0);
        benchmark::DoNotOptimize(mod.step(x, (n % 96) < 48));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(bm_modulator_step);

void bm_generator_step(benchmark::State& state) {
    gen::generator_params params;
    gen::sinewave_generator generator(params);
    generator.set_amplitude(millivolt(150.0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(generator.step());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(bm_generator_step);

void bm_dut_state_space_step(benchmark::State& state) {
    auto device = dut::make_paper_dut(0.01, 7);
    device->prepare(96000.0);
    std::size_t n = 0;
    for (auto _ : state) {
        const double u = 0.3 * std::sin(two_pi * static_cast<double>(n++) / 96.0);
        benchmark::DoNotOptimize(device->process(u));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(bm_dut_state_space_step);

void bm_board_render_period(benchmark::State& state) {
    core::demonstrator_board board(gen::generator_params::ideal(),
                                   dut::make_paper_dut(0.01, 7));
    board.set_amplitude(millivolt(150.0));
    const auto tb = sim::timebase::for_wave_frequency(kilohertz(1.0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            board.render(tb, 1, core::signal_path::through_dut, 0));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 96);
}
BENCHMARK(bm_board_render_period);

void bm_signature_acquisition(benchmark::State& state) {
    const auto periods = static_cast<std::size_t>(state.range(0));
    eval::signature_extractor extractor(sd::modulator_params::ideal(), 3);
    eval::acquisition_settings settings;
    settings.harmonic_k = 1;
    settings.periods = periods;
    settings.offset = eval::offset_mode::none;
    const auto source = [](std::size_t n) {
        return 0.2 * std::sin(two_pi * static_cast<double>(n) / 96.0);
    };
    for (auto _ : state) {
        benchmark::DoNotOptimize(extractor.acquire(source, settings));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(periods * 96));
}
BENCHMARK(bm_signature_acquisition)->Arg(20)->Arg(200);

void bm_fft(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    std::vector<dsp::cplx> data(n);
    rng generator(5);
    for (auto& x : data) {
        x = dsp::cplx(generator.uniform(-1, 1), 0.0);
    }
    for (auto _ : state) {
        auto copy = data;
        dsp::fft_inplace(copy);
        benchmark::DoNotOptimize(copy.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(n));
}
BENCHMARK(bm_fft)->Arg(1 << 10)->Arg(1 << 14);

void bm_expm_discretize(benchmark::State& state) {
    const auto tf = dut::butterworth_lowpass2(1000.0);
    const auto ss_template = dut::state_space::from_transfer_function(tf);
    for (auto _ : state) {
        auto ss = ss_template;
        ss.prepare(96000.0);
        benchmark::DoNotOptimize(ss.step(1.0));
    }
}
BENCHMARK(bm_expm_discretize);

} // namespace
